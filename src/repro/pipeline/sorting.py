"""Reference sorting stage (pipeline stage 3).

This module provides the *functional* ground truth: exact per-tile depth
ordering computed with numpy's sort.  Neo's reuse-and-update strategies in
:mod:`repro.core` are validated against it, and the quality experiments
(Table 2, Fig. 19) compare images rendered with approximate orders against
images rendered with this exact order.

:class:`SortedTiles` stores the depth-sorted tables in the flat tile-stream
layout (:class:`~repro.pipeline.tiling.TileStream`): one ``rows`` stream
plus aligned flat ``ids`` / ``depths`` arrays sharing its offsets.  The old
per-tile list attributes remain as deprecated shims returning views.
"""

from __future__ import annotations

import numpy as np

from ..backend import core_ops
from .tiling import TileAssignment, TileStream, _warn_deprecated

#: Ops the sorting core dispatches through the pluggable array backend.
_XP = core_ops(
    "sorting", "lexsort", "argsort", "sort", "searchsorted", "repeat", "clip"
)


class SortedTiles:
    """Depth-sorted per-tile Gaussian tables in tile-stream layout.

    Attributes
    ----------
    stream:
        :class:`TileStream` of row indices into the frame's
        :class:`ProjectedGaussians`, sorted front-to-back by depth within
        each tile.
    ids:
        Flat global Gaussian IDs aligned with ``stream.values``.
    depths:
        Flat depths aligned with ``stream.values`` (non-decreasing within
        each tile).
    """

    def __init__(
        self,
        stream: TileStream | None = None,
        ids: np.ndarray | None = None,
        depths: np.ndarray | None = None,
        *,
        tile_rows: list[np.ndarray] | None = None,
        tile_ids: list[np.ndarray] | None = None,
        tile_depths: list[np.ndarray] | None = None,
    ) -> None:
        legacy = tile_rows is not None or tile_ids is not None or tile_depths is not None
        if legacy:
            if stream is not None or ids is not None or depths is not None:
                raise ValueError("pass either stream/ids/depths or the legacy lists")
            if tile_rows is None or tile_ids is None or tile_depths is None:
                raise ValueError("legacy construction needs all three per-tile lists")
            _warn_deprecated(
                "SortedTiles(tile_rows=..., tile_ids=..., tile_depths=...)",
                "SortedTiles(stream=..., ids=..., depths=...) or "
                "SortedTiles.from_tile_lists(...)",
            )
            stream, ids, depths = _from_tile_lists(tile_rows, tile_ids, tile_depths)
        if stream is None or ids is None or depths is None:
            raise ValueError("stream, ids, and depths are required")
        if ids.shape[0] != stream.num_pairs or depths.shape[0] != stream.num_pairs:
            raise ValueError("ids and depths must align with the stream")
        self.stream = stream
        self.ids = ids
        self.depths = depths
        self._lists: dict[str, list[np.ndarray]] = {}

    @classmethod
    def from_tile_lists(
        cls,
        tile_rows: list[np.ndarray],
        tile_ids: list[np.ndarray],
        tile_depths: list[np.ndarray],
    ) -> "SortedTiles":
        """Build from the legacy per-tile list layout (no deprecation)."""
        stream, ids, depths = _from_tile_lists(tile_rows, tile_ids, tile_depths)
        return cls(stream=stream, ids=ids, depths=depths)

    # ------------------------------------------------------------------
    # Stream API
    # ------------------------------------------------------------------
    @property
    def num_tiles(self) -> int:
        """Number of tiles covered."""
        return self.stream.num_tiles

    @property
    def num_pairs(self) -> int:
        """Total tile-Gaussian pairs in the sorted tables."""
        return self.stream.num_pairs

    def counts(self) -> np.ndarray:
        """Per-tile table lengths."""
        return self.stream.counts()

    def rows_for(self, tile: int) -> np.ndarray:
        """Tile ``tile``'s sorted row indices (zero-copy view)."""
        return self.stream.rows_for(tile)

    def ids_for(self, tile: int) -> np.ndarray:
        """Tile ``tile``'s sorted global Gaussian IDs (zero-copy view)."""
        return self.ids[self.stream.offsets[tile] : self.stream.offsets[tile + 1]]

    def depths_for(self, tile: int) -> np.ndarray:
        """Tile ``tile``'s sorted depths (zero-copy view)."""
        return self.depths[self.stream.offsets[tile] : self.stream.offsets[tile + 1]]

    # ------------------------------------------------------------------
    # Deprecated list shims
    # ------------------------------------------------------------------
    def _list_shim(self, name: str, flat: np.ndarray) -> list[np.ndarray]:
        if name not in self._lists:
            off = self.stream.offsets
            self._lists[name] = [
                flat[off[t] : off[t + 1]] for t in range(self.stream.num_tiles)
            ]
        return self._lists[name]

    @property
    def tile_rows(self) -> list[np.ndarray]:
        """Deprecated list accessor; use :meth:`rows_for` / :attr:`stream`."""
        _warn_deprecated("SortedTiles.tile_rows", "SortedTiles.rows_for / stream")
        return self._list_shim("rows", self.stream.values)

    @property
    def tile_ids(self) -> list[np.ndarray]:
        """Deprecated list accessor; use :meth:`ids_for` / :attr:`ids`."""
        _warn_deprecated("SortedTiles.tile_ids", "SortedTiles.ids_for / ids")
        return self._list_shim("ids", self.ids)

    @property
    def tile_depths(self) -> list[np.ndarray]:
        """Deprecated list accessor; use :meth:`depths_for` / :attr:`depths`."""
        _warn_deprecated("SortedTiles.tile_depths", "SortedTiles.depths_for / depths")
        return self._list_shim("depths", self.depths)


def _from_tile_lists(
    tile_rows: list[np.ndarray],
    tile_ids: list[np.ndarray],
    tile_depths: list[np.ndarray],
) -> tuple[TileStream, np.ndarray, np.ndarray]:
    if not (len(tile_rows) == len(tile_ids) == len(tile_depths)):
        raise ValueError("per-tile lists must have equal length")
    stream = TileStream.from_lists(tile_rows)
    if stream.num_pairs:
        ids = np.concatenate(tile_ids)
        depths = np.concatenate(tile_depths)
    else:
        ids = np.empty(0, dtype=np.int64)
        depths = np.empty(0, dtype=np.float64)
    if ids.shape[0] != stream.num_pairs or depths.shape[0] != stream.num_pairs:
        raise ValueError("per-tile ids/depths must align with rows")
    return stream, ids, depths


def sort_tiles(assignment: TileAssignment) -> SortedTiles:
    """Exactly sort every tile's Gaussians front-to-back by depth.

    Ties break on global Gaussian ID so the order is deterministic, mirroring
    the stable key construction (depth | ID) of the CUDA radix sort.

    All tiles are sorted in *one* concatenated pass instead of a ``lexsort``
    call per tile: the frame's Gaussians are ranked once by ``(depth, ID)``
    (a ``lexsort`` over the ~m projected Gaussians rather than the ~n >> m
    duplicated pairs), and the pair stream is then ordered by the integer key
    ``tile * m + rank`` — unique per pair, since a Gaussian appears at most
    once per tile, so a plain ``argsort`` suffices and no float comparisons
    touch the hot sort.  Within a tile, ordering by rank is ordering by
    ``(depth, ID)``, so the depth-sorted stream shares the assignment
    stream's offsets — pinned by the golden test against
    :func:`repro.pipeline.reference.sort_tiles`.
    """
    proj = assignment.projected
    m = len(proj)
    stream = assignment.stream
    all_rows = stream.values
    tile_of = stream.tile_of()

    xp = _XP()
    depth_order = xp.lexsort((proj.ids, proj.depths))
    rank = np.empty(m, dtype=np.int64)
    rank[depth_order] = np.arange(m, dtype=np.int64)
    pair_ranks = rank[all_rows]
    if stream.num_tiles * max(m, 1) < np.iinfo(np.int64).max:
        order = xp.argsort(tile_of * m + pair_ranks)
    else:  # overflow-proof fallback; unreachable for any realistic grid
        order = xp.lexsort((pair_ranks, tile_of))

    rows_sorted = all_rows[order]
    return SortedTiles(
        stream=stream.with_values(rows_sorted),
        ids=proj.ids[rows_sorted],
        depths=proj.depths[rows_sorted],
    )


def is_depth_sorted(depths: np.ndarray, tolerance: float = 0.0) -> bool:
    """True if ``depths`` is non-decreasing (within ``tolerance``)."""
    if depths.shape[0] < 2:
        return True
    return bool(np.all(np.diff(depths) >= -tolerance))


def order_quality(approx_depths: np.ndarray) -> float:
    """Fraction of adjacent pairs already in non-decreasing depth order.

    1.0 means perfectly sorted; used to quantify how far an incremental
    ordering has drifted from the exact one.
    """
    n = approx_depths.shape[0]
    if n < 2:
        return 1.0
    good = int(np.count_nonzero(np.diff(approx_depths) >= 0))
    return good / (n - 1)


def kendall_tau_distance(order_a: np.ndarray, order_b: np.ndarray) -> float:
    """Normalized Kendall-tau distance between two orderings of the same set.

    0.0 means identical order, 1.0 fully reversed.  Computed via merge-sort
    inversion counting in O(n log n); both inputs must be permutations of the
    same ID set.
    """
    order_a = np.asarray(order_a)
    order_b = np.asarray(order_b)
    if order_a.shape != order_b.shape:
        raise ValueError("orderings must have equal length")
    n = order_a.shape[0]
    if n < 2:
        return 0.0
    xp = _XP()
    sorted_a = xp.sort(order_a)
    if not np.array_equal(sorted_a, xp.sort(order_b)):
        raise ValueError("orderings must contain the same IDs")
    if np.any(sorted_a[1:] == sorted_a[:-1]):
        # A duplicated ID has no well-defined rank; the scalar dict lookup
        # silently resolved it last-wins, so reject it outright instead.
        raise ValueError("orderings must not contain duplicate IDs")

    # Rank-in-b lookup without a Python dict: sort b's IDs once, then map
    # every ID in a to its position in b via binary search (both lists hold
    # the same ID set, so every lookup hits exactly).
    by_id = xp.argsort(order_b, kind="stable")
    sequence = by_id[xp.searchsorted(order_b[by_id], order_a)]
    inversions = _count_inversions(sequence)
    return inversions / (n * (n - 1) / 2)


def _count_inversions(seq: np.ndarray) -> int:
    """Count inversions of a permutation of ``0..n-1`` in O(n log^2 n).

    Uses merge sort's level decomposition without the Python merge loop: at
    the level of block size ``2 * width``, each block's left and right
    halves preserve the original relative order of their elements, so every
    inversion is a (left, right) cross pair at exactly one level.  Cross
    pairs for *all* blocks of a level are counted with a single flat
    ``searchsorted`` — each block's values are offset into a disjoint range
    so the concatenation of the per-block sorted left halves stays globally
    sorted.  Equivalent to the scalar bottom-up merge sort preserved in
    :func:`repro.pipeline.reference.kendall_tau_distance`.
    """
    seq = np.asarray(seq, dtype=np.int64)
    n = seq.shape[0]
    if n < 2:
        return 0
    xp = _XP()
    inversions = 0
    width = 1
    while width < n:
        block = 2 * width
        num_blocks = -(-n // block)
        # Pad to whole blocks with a sentinel above every real value; the
        # sentinel never counts on either side.
        padded = np.full(num_blocks * block, n, dtype=np.int64)
        padded[:n] = seq
        resh = padded.reshape(num_blocks, block)
        left = xp.sort(resh[:, :width], axis=1)
        right = resh[:, width:]

        offsets = np.arange(num_blocks, dtype=np.int64) * (n + 1)
        flat_left = (left + offsets[:, None]).ravel()
        flat_right = (right + offsets[:, None]).ravel()
        le_counts = xp.searchsorted(flat_left, flat_right, side="right") - xp.repeat(
            np.arange(num_blocks, dtype=np.int64) * width, width
        )
        # Left elements greater than a right element r are the block's real
        # left residents minus those <= r.
        real_left = xp.clip(n - np.arange(num_blocks, dtype=np.int64) * block, 0, width)
        gt = xp.repeat(real_left, width) - le_counts
        inversions += int(gt[right.ravel() < n].sum())
        width = block
    return inversions
