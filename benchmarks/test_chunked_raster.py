"""Bench: chunked-vectorized pipeline vs the frozen scalar reference.

Runs the ``repro bench`` suites in quick mode as a pytest gate: every bench
must stay bit-identical to its scalar reference *and* clear its speedup
floor.  Wall-clock assertions don't belong in the fast CI leg; like the
other timing-sensitive benches here, run only in the full (slow) suite.
"""

from __future__ import annotations

import pytest

from repro.bench import run_benchmarks

pytestmark = pytest.mark.slow

PIPELINE_BENCHES = ("raster_chunked", "sort_batched", "order_metrics", "render_sequence")


def test_pipeline_benches_identity_and_floor():
    for record in run_benchmarks(list(PIPELINE_BENCHES), quick=True):
        print(f"\n{record.to_text()}")
        assert record.identical, f"{record.name}: diverged from the scalar reference"
        assert record.speedup >= record.floor, (
            f"{record.name}: {record.speedup:.2f}x under the {record.floor:.2f}x floor"
        )


def test_render_sequence_reports_stage_timings():
    (record,) = run_benchmarks(["render_sequence"], quick=True)
    stages = record.detail["stage_seconds"]
    assert stages["total_s"] > 0
    # Rasterization must dominate the synthetic bench — that is the hot
    # path whose trajectory BENCH_pipeline.json exists to track.
    assert stages["raster_s"] > 0.5 * stages["total_s"]
