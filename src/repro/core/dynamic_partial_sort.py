"""Dynamic Partial Sorting (paper Algorithm 1, section 4.3).

The reordering step of reuse-and-update sorting: instead of globally
re-sorting a tile's Gaussian table, the table is processed in chunks that fit
in on-chip memory (256 entries), each chunk is sorted independently, and the
chunk *boundaries alternate by half a chunk between frames* so entries can
migrate across chunk edges over consecutive frames (Figure 9b).

Each chunk is read from DRAM once and written back once — a single off-chip
pass — which is the source of Neo's bandwidth savings over multi-pass global
sorts.

Note on the pseudocode: Algorithm 1 advances ``range.start`` by ``C`` after
every chunk, which on even iterations (first chunk of size ``C/2``) would
leave the half-chunk ``[C/2, C)`` unsorted.  We implement the clearly
intended semantics illustrated by Figure 9(b): on even iterations the chunk
grid is offset by ``C/2``, producing chunks ``[0, C/2), [C/2, 3C/2), ...`` so
every element is covered and boundaries interleave between frames.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bitonic import BitonicStats, bsu_sort_chunk
from .gaussian_table import TABLE_ENTRY_BYTES
from .merge_unit import MergeStats, merge_runs

#: On-chip chunk capacity of a Sorting Core (paper section 4.3).
DEFAULT_CHUNK_SIZE = 256


@dataclass
class PartialSortStats:
    """Work and traffic counters for one Dynamic Partial Sorting pass.

    Attributes
    ----------
    chunks:
        Chunks processed (each = one DRAM read + one write of the chunk).
    entries_read / entries_written:
        Table entries moved across the off-chip interface.
    bitonic:
        BSU activity (only populated with ``use_hardware_units=True``).
    merge:
        MSU+ activity (only populated with ``use_hardware_units=True``).
    """

    chunks: int = 0
    entries_read: int = 0
    entries_written: int = 0
    bitonic: BitonicStats | None = None
    merge: MergeStats | None = None

    @property
    def bytes_read(self) -> int:
        """Off-chip bytes fetched."""
        return self.entries_read * TABLE_ENTRY_BYTES

    @property
    def bytes_written(self) -> int:
        """Off-chip bytes written back."""
        return self.entries_written * TABLE_ENTRY_BYTES


def chunk_ranges(length: int, chunk_size: int, iteration: int) -> list[tuple[int, int]]:
    """Chunk boundaries for a table of ``length`` entries at ``iteration``.

    Odd iterations use the aligned grid ``[0, C), [C, 2C), ...``; even
    iterations offset by half a chunk: ``[0, C/2), [C/2, 3C/2), ...``
    (interleaved boundaries, Figure 9b).

    >>> chunk_ranges(10, 4, iteration=1)
    [(0, 4), (4, 8), (8, 10)]
    >>> chunk_ranges(10, 4, iteration=2)
    [(0, 2), (2, 6), (6, 10)]
    """
    if chunk_size < 2:
        raise ValueError("chunk_size must be >= 2")
    if length <= 0:
        return []
    ranges: list[tuple[int, int]] = []
    if iteration % 2 == 1:
        start = 0
    else:
        half = chunk_size // 2
        first_end = min(half, length)
        if first_end > 0:
            ranges.append((0, first_end))
        start = first_end
    while start < length:
        end = min(start + chunk_size, length)
        ranges.append((start, end))
        start = end
    return ranges


def _sort_chunk_in_place(
    keys: np.ndarray,
    values: np.ndarray,
    start: int,
    end: int,
    use_hardware_units: bool,
    stats: PartialSortStats,
) -> None:
    """Sort ``[start, end)`` of the table inside on-chip memory."""
    if use_hardware_units:
        if stats.bitonic is None:
            stats.bitonic = BitonicStats()
        if stats.merge is None:
            stats.merge = MergeStats()
        sub_keys, sub_vals, runs = bsu_sort_chunk(
            keys[start:end], values[start:end], stats=stats.bitonic
        )
        merged_keys, merged_vals = merge_runs(sub_keys, sub_vals, runs, stats=stats.merge)
        keys[start:end] = merged_keys
        values[start:end] = merged_vals
    else:
        order = np.argsort(keys[start:end], kind="stable")
        keys[start:end] = keys[start:end][order]
        values[start:end] = values[start:end][order]


def dynamic_partial_sort(
    keys: np.ndarray,
    values: np.ndarray,
    iteration: int,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    passes: int = 1,
    use_hardware_units: bool = False,
    stats: PartialSortStats | None = None,
) -> tuple[np.ndarray, np.ndarray, PartialSortStats]:
    """Apply Dynamic Partial Sorting to a (keys, values) table.

    Parameters
    ----------
    keys:
        Depth keys from the previous frame's table (possibly one frame
        stale under deferred depth update).
    values:
        Payload (Gaussian IDs) permuted alongside the keys.
    iteration:
        Current frame number; its parity selects the chunk-boundary phase.
    chunk_size:
        On-chip chunk capacity ``C`` (256 in the paper's configuration).
    passes:
        Off-chip sorting passes.  The paper adopts a single pass (accuracy
        loss < 0.1 dB); more passes trade traffic for ordering accuracy
        (each extra pass re-runs the opposite boundary phase).
    use_hardware_units:
        Route each chunk through the BSU + MSU+ functional models instead of
        ``np.sort`` (slower, but counts comparator/merge work exactly).

    Returns
    -------
    ``(sorted_keys, sorted_values, stats)``.  Inputs are not mutated.
    """
    if passes < 1:
        raise ValueError("passes must be >= 1")
    keys = np.asarray(keys, dtype=np.float64).copy()
    values = np.asarray(values).copy()
    if keys.shape != values.shape:
        raise ValueError("keys and values must align")
    if stats is None:
        stats = PartialSortStats()

    for pass_index in range(passes):
        ranges = chunk_ranges(keys.shape[0], chunk_size, iteration + pass_index)
        for start, end in ranges:
            stats.chunks += 1
            stats.entries_read += end - start
            stats.entries_written += end - start
            _sort_chunk_in_place(keys, values, start, end, use_hardware_units, stats)
    return keys, values, stats


def full_sort(
    keys: np.ndarray,
    values: np.ndarray,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    stats: PartialSortStats | None = None,
) -> tuple[np.ndarray, np.ndarray, PartialSortStats]:
    """Conventional from-scratch sort with merge-sort traffic accounting.

    Models the baseline Sorting Core flow (section 5.3 "Conventional
    sorting"): chunk-sort everything once, then a global merge that streams
    the whole table through DRAM ``ceil(log2(num_chunks))`` more times.
    """
    keys = np.asarray(keys, dtype=np.float64).copy()
    values = np.asarray(values).copy()
    if stats is None:
        stats = PartialSortStats()
    n = keys.shape[0]
    if n == 0:
        return keys, values, stats

    num_chunks = -(-n // chunk_size)
    # Pass 1: chunk sorting (read + write each entry once).
    stats.chunks += num_chunks
    stats.entries_read += n
    stats.entries_written += n
    # Global merge passes: each level streams the full table again.
    merge_levels = max(int(np.ceil(np.log2(num_chunks))), 0)
    stats.entries_read += n * merge_levels
    stats.entries_written += n * merge_levels

    order = np.argsort(keys, kind="stable")
    return keys[order], values[order], stats


def sortedness(keys: np.ndarray) -> float:
    """Fraction of adjacent pairs in non-decreasing order (1.0 = sorted)."""
    if keys.shape[0] < 2:
        return 1.0
    return float(np.count_nonzero(np.diff(keys) >= 0)) / (keys.shape[0] - 1)


def max_displacement(keys: np.ndarray) -> int:
    """Largest distance any element sits from its fully-sorted position.

    The convergence metric of Figure 9: interleaved boundaries reduce the
    maximum displacement by up to ``chunk_size/2`` per iteration.
    """
    n = keys.shape[0]
    if n < 2:
        return 0
    target = np.argsort(np.argsort(keys, kind="stable"), kind="stable")
    return int(np.abs(target - np.arange(n)).max())
