"""GSCore ASIC performance model (Lee et al., ASPLOS 2024 — the baseline).

GSCore accelerates 3DGS with hierarchical sorting (a coarse depth-bucketing
pass followed by fine sorting within buckets) and subtile-based
rasterization.  Relative to the GPU it slashes sorting traffic (one coarse
off-chip re-pass instead of the GPU's repeated radix passes) and rasterization compute
(dedicated subtile units), but it still *re-sorts from scratch every frame*
and it materializes subtile bitmaps early in the pipeline and propagates
them to rasterization — the two inefficiencies Neo removes.

Latency model: DRAM service time for the frame's traffic plus the
non-overlapped compute component, where compute scales inversely with the
core count (Fig. 4's behaviour: at 51.2 GB/s, 4x the cores buys only ~1.12x
FPS because memory time dominates).

The per-sequence loop lives in :class:`~repro.hw.system.SystemModel`; this
module supplies only GSCore's equations, vectorized over the frame axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .config import DramConfig, GSCoreConfig
from .stages import (
    CULL_PROBE_BYTES,
    FEATURE_2D_BYTES,
    FEATURE_3D_BYTES,
    PIXEL_BYTES,
)
from .system import (
    FrameBatch,
    ReportBatch,
    SystemModel,
    TrafficBatch,
    register_system,
    register_variant,
    stacked_copy,
)

#: Sort-entry bytes (32-bit key, 32-bit Gaussian ID).
_ENTRY_BYTES = 8

#: Subtile bitmap bytes per pair, generated at duplication time and carried
#: through the pipeline (the traffic Neo's on-the-fly ITUs eliminate).
_BITMAP_BYTES = 4

#: Front-most Gaussians per 16 px tile processed before early termination.
_TERMINATION_DEPTH_16 = 250

#: Achievable DRAM efficiency: GSCore's mix of streaming sort traffic and
#: per-tile gathers lands below pure-streaming efficiency.
_DRAM_EFFICIENCY = 0.72

#: Rasterization cycles per blended pair per core at 1 GHz; fitted to the
#: core-count scaling of Fig. 4 (compute is ~56 ms across 4 cores at QHD).
_RASTER_CYCLES_PER_PAIR = 16.0

#: Sorting-unit cycles per pair per core (bitonic + merge, heavily
#: parallel).
_SORT_CYCLES_PER_PAIR = 0.25

#: Per-tile pipeline drain overhead (cycles): tile setup, bucket
#: boundary handling, output flush.
_CYCLES_PER_TILE = 800.0

#: Fixed per-frame serial overhead (kernel launch/drain, table setup).
_SERIAL_OVERHEAD_S = 1.0e-3


@dataclass
class GSCoreModel(SystemModel):
    """Performance model of the (16-core-scaled) GSCore accelerator."""

    config: GSCoreConfig = field(default_factory=GSCoreConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    name: str = "gscore"

    # ------------------------------------------------------------------
    def stacked(self, axes) -> "GSCoreModel | None":
        """GSCore stacks bandwidth and — when the factory honored the
        ``cores`` knob — the core count.  Pinned-config variants
        (``gscore-32c``) validate the knob per cell instead of reading it,
        so a varying cores axis cannot stack there and the caller falls
        back to per-cell simulation.
        """
        axes = dict(axes)
        bandwidth = axes.pop("bandwidth_gbps", None)
        cores = axes.pop("cores", None)
        if axes:
            return None
        if cores is not None and not getattr(self, "_stacks_cores", False):
            return None
        model = self
        if bandwidth is not None:
            model = stacked_copy(
                model, dram=stacked_copy(self.dram, bandwidth_gbps=bandwidth)
            )
        if cores is not None:
            model = stacked_copy(
                model, config=stacked_copy(self.config, cores=cores)
            )
        return model

    # ------------------------------------------------------------------
    def batch_traffic(self, batch: FrameBatch) -> TrafficBatch:
        """DRAM bytes per stage for every frame in the batch."""
        visible = batch.visible
        total = batch.num_gaussians
        pairs = batch.pairs

        feature = (
            visible * FEATURE_3D_BYTES
            + (total - visible) * CULL_PROBE_BYTES
            + visible * FEATURE_2D_BYTES
        )
        # Duplication writes the stream once; each hierarchical pass
        # (coarse bucketing; fine sorting stays on-chip per bucket chunk)
        # reads and writes it again.
        sorting = pairs * _ENTRY_BYTES * (1 + 2 * self.config.sorting_passes)
        # Bitmaps are produced during preprocessing and re-read by the
        # rasterizer (write + read).
        bitmap_traffic = 2 * pairs * _BITMAP_BYTES

        blended = batch.effective_pairs(_TERMINATION_DEPTH_16)
        raster = (
            blended * FEATURE_2D_BYTES
            + bitmap_traffic
            + batch.pixels * PIXEL_BYTES
        )
        return TrafficBatch(
            feature_extraction=feature, sorting=sorting, rasterization=raster
        )

    # ------------------------------------------------------------------
    def batch_report(self, batch: FrameBatch) -> ReportBatch:
        """Latency and traffic for every frame in the batch."""
        traffic = self.batch_traffic(batch)
        bandwidth = self.dram.bandwidth_gbps * 1e9 * _DRAM_EFFICIENCY
        memory_time = traffic.total / bandwidth

        freq = self.config.frequency_ghz * 1e9
        cores = self.config.cores
        blended = batch.effective_pairs(_TERMINATION_DEPTH_16)
        raster_cycles = blended * _RASTER_CYCLES_PER_PAIR
        raster_cycles = raster_cycles + batch.nonempty_tiles * _CYCLES_PER_TILE
        sort_cycles = batch.pairs * _SORT_CYCLES_PER_PAIR
        compute_time = (raster_cycles + sort_cycles) / (cores * freq) + _SERIAL_OVERHEAD_S

        return ReportBatch(
            traffic=traffic,
            memory_time_s=memory_time,
            compute_time_s=compute_time,
        )


# ----------------------------------------------------------------------
# Registry entries
# ----------------------------------------------------------------------
@register_system(
    "gscore",
    description="GSCore ASIC baseline: hierarchical re-sort each frame, 16 cores",
    model_cls=GSCoreModel,
    config_cls=GSCoreConfig,
    dram_policy="edge",
)
def _build_gscore(dram=None, cores: int = 16, config=None, **kwargs) -> GSCoreModel:
    """GSCore honors the ``cores`` knob unless a full config is supplied.

    Config-pinning variants (``gscore-32c``) reject a *conflicting* explicit
    core count instead of silently ignoring it — a cores sweep over a
    pinned-core variant would otherwise produce identical rows under
    different labels and cache keys.  The global default (16) is treated as
    "unspecified" because every caller materializes it.
    """
    if dram is None:
        dram = DramConfig()
    honors_cores = config is None
    if config is None:
        config = GSCoreConfig(cores=cores)
    elif cores != 16 and cores != config.cores:
        raise ValueError(
            f"this system pins {config.cores} cores; got cores={cores} — "
            "sweep core counts on the base 'gscore' system instead"
        )
    model = GSCoreModel(config=config, dram=dram, **kwargs)
    model._stacks_cores = honors_cores
    return model


register_variant(
    "gscore-32c",
    base="gscore",
    description="GSCore scaled to 32 cores: compute headroom, same memory wall",
    overrides={"config": GSCoreConfig(cores=32), "name": "gscore-32c"},
)
