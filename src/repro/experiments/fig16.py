"""Fig. 16 — DRAM traffic for 60 QHD frames: Orin AGX vs GSCore vs Neo.

Neo reduces total DRAM traffic by ~94 % vs the GPU and ~81 % vs GSCore,
which is what lets it run at full speed under a 51.2 GB/s edge budget.
"""

from __future__ import annotations

import numpy as np

from ..scene.datasets import TANKS_AND_TEMPLES
from .runner import (
    PAPER_TRAFFIC_FRAMES,
    ExperimentResult,
    simulate_system,
)

SYSTEMS = ("orin", "gscore", "neo")


def run(
    scenes=TANKS_AND_TEMPLES,
    resolution: str = "qhd",
    num_frames: int | None = None,
) -> ExperimentResult:
    """GB of DRAM traffic per scene per system (60-frame totals)."""
    result = ExperimentResult(
        name="fig16",
        description="DRAM traffic (GB / 60 frames) at QHD: Orin vs GSCore vs Neo",
    )
    per_system: dict[str, list[float]] = {s: [] for s in SYSTEMS}
    for scene in scenes:
        row = {"scene": scene}
        for system in SYSTEMS:
            report = simulate_system(system, scene, resolution, num_frames=num_frames)
            gb = report.traffic_gb_for(PAPER_TRAFFIC_FRAMES)
            row[system] = gb
            per_system[system].append(gb)
        result.rows.append(row)
    result.rows.append(
        {"scene": "MEAN", **{s: float(np.mean(v)) for s, v in per_system.items()}}
    )
    return result


def reductions(result: ExperimentResult) -> dict[str, float]:
    """Neo's mean traffic reduction vs each baseline."""
    mean = result.filter(scene="MEAN")[0]
    return {
        "vs_orin": 1.0 - mean["neo"] / mean["orin"],
        "vs_gscore": 1.0 - mean["neo"] / mean["gscore"],
    }
