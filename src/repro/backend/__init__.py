"""Pluggable array backend (`xp`) for the vectorized cores.

See :mod:`repro.backend.dispatch` for the design; the README "Backends"
section documents the user-facing contract.
"""

from .dispatch import (
    CORE_REQUIREMENTS,
    FALLBACK_BACKEND,
    OP_SIGNATURES,
    Backend,
    ResolvedOps,
    active_backend,
    backend_names,
    core_ops,
    get_backend,
    register_backend,
    resolution_table,
    set_active,
    unregister_backend,
    use_backend,
)

__all__ = [
    "CORE_REQUIREMENTS",
    "FALLBACK_BACKEND",
    "OP_SIGNATURES",
    "Backend",
    "ResolvedOps",
    "active_backend",
    "backend_names",
    "core_ops",
    "get_backend",
    "register_backend",
    "resolution_table",
    "set_active",
    "unregister_backend",
    "use_backend",
]
