"""Unit tests for the engine-level discrete-event simulators."""

import numpy as np
import pytest

from repro.hw.config import DramConfig, NeoConfig
from repro.hw.preprocess_engine import PreprocessEngineSim
from repro.hw.raster_engine import (
    RasterEngineSim,
    SubtileGroupWork,
    groups_for_tile,
    rasterize_tile_timeline,
)
from repro.hw.sorting_engine import (
    SortingEngineSim,
    chunk_compute_cycles,
    jobs_from_occupancy,
)


class TestChunkComputeCycles:
    def test_full_chunk(self):
        # 256 entries = 16 BSU runs x 10 stages + 4 merge levels x 256.
        assert chunk_compute_cycles(256) == 16 * 10 + 4 * 256

    def test_single_subchunk_skips_merge(self):
        assert chunk_compute_cycles(16) == 10
        assert chunk_compute_cycles(10) == 10

    def test_empty(self):
        assert chunk_compute_cycles(0) == 0


class TestJobsFromOccupancy:
    def test_splitting(self):
        jobs = jobs_from_occupancy([300, 0, 256, 10], chunk_size=256)
        sizes = [(j.tile, j.entries) for j in jobs]
        assert sizes == [(0, 256), (0, 44), (2, 256), (3, 10)]

    def test_total_entries_preserved(self, rng):
        occ = rng.integers(0, 2000, size=50)
        jobs = jobs_from_occupancy(occ)
        assert sum(j.entries for j in jobs) == occ.sum()


class TestSortingEngineSim:
    def test_empty(self):
        report = SortingEngineSim().simulate([])
        assert report.total_cycles == 0
        assert report.dram_utilization == 0.0

    def test_bandwidth_bound_matches_analytic(self):
        # Large uniform workload at edge bandwidth: the engine must be
        # DRAM-limited, and the per-entry cost must equal the streaming
        # transfer cost (16 bytes per entry, read + write).
        sim = SortingEngineSim()
        occ = np.full(500, 4096)
        report = sim.simulate_frame(occ)
        analytic = 16.0 / (sim.dram.bandwidth_gbps * sim.dram.efficiency)
        assert report.cycles_per_entry == pytest.approx(analytic, rel=0.05)
        assert report.dram_utilization > 0.95

    def test_compute_bound_with_huge_bandwidth(self):
        sim = SortingEngineSim(dram=DramConfig(bandwidth_gbps=10_000))
        occ = np.full(64, 4096)
        report = sim.simulate_frame(occ)
        # With near-infinite bandwidth the cores limit throughput:
        # ~4.6 compute cycles per entry spread over 16 cores.
        per_entry = chunk_compute_cycles(256) / 256 / sim.config.sorting_cores
        assert report.cycles_per_entry == pytest.approx(per_entry, rel=0.2)
        assert report.dram_utilization < 0.5

    def test_sixteen_cores_saturate_edge_bandwidth(self):
        # At edge bandwidth, 16 cores are just enough to become DRAM-bound
        # (4.6 compute cycles/entry vs 0.37 transfer cycles/entry), which is
        # why Neo provisions 16 Sorting Cores (Table 1): doubling them buys
        # nothing, while halving them makes the engine compute-bound.
        occ = np.full(200, 2048)
        edge_8 = SortingEngineSim(config=NeoConfig(sorting_cores=8)).simulate_frame(occ)
        edge_16 = SortingEngineSim(config=NeoConfig(sorting_cores=16)).simulate_frame(occ)
        edge_32 = SortingEngineSim(config=NeoConfig(sorting_cores=32)).simulate_frame(occ)
        assert edge_16.dram_utilization > 0.95
        assert edge_8.total_cycles / edge_16.total_cycles > 1.3  # compute-bound at 8
        assert edge_16.total_cycles / edge_32.total_cycles < 1.1  # saturated at 16

    def test_bandwidth_lifts_compute_bound_cores(self):
        occ = np.full(200, 2048)
        fast = DramConfig(bandwidth_gbps=2000)
        fast_4 = SortingEngineSim(config=NeoConfig(sorting_cores=4), dram=fast).simulate_frame(occ)
        fast_16 = SortingEngineSim(config=NeoConfig(sorting_cores=16), dram=fast).simulate_frame(occ)
        assert fast_4.total_cycles / fast_16.total_cycles > 2.0

    def test_conservation(self):
        occ = [100, 300, 700]
        report = SortingEngineSim().simulate_frame(occ)
        assert report.entries == 1100
        assert report.chunks == 1 + 2 + 3


class TestRasterTimeline:
    def test_empty(self):
        timeline = rasterize_tile_timeline([])
        assert timeline.total_cycles == 0.0

    def test_pipeline_hides_itu(self):
        # SCU-heavy groups: ITU work overlaps and total ~= itu(g0) + sum scu.
        groups = [SubtileGroupWork(gaussians=10, hits=100)] * 8
        timeline = rasterize_tile_timeline(groups)
        expected = 10 * 1.0 + 8 * 100 * 4.0
        assert timeline.total_cycles == pytest.approx(expected)
        assert timeline.pipeline_efficiency > 0.95

    def test_itu_bound_when_hits_sparse(self):
        groups = [SubtileGroupWork(gaussians=1000, hits=1)] * 4
        timeline = rasterize_tile_timeline(groups)
        assert timeline.total_cycles == pytest.approx(4 * 1000 * 1.0 + 1 * 4.0)
        assert timeline.pipeline_efficiency < 0.1

    def test_groups_for_tile(self):
        groups = groups_for_tile(num_gaussians=500, subtile_hits=3200)
        assert len(groups) == 16  # 64 subtiles / 4 SCUs per core
        assert sum(g.hits for g in groups) == pytest.approx(3200, rel=0.01)


class TestRasterEngineSim:
    def test_cores_balance_tiles(self):
        sim = RasterEngineSim()
        report = sim.simulate_frame([100] * 8, [600] * 8)
        single = rasterize_tile_timeline(groups_for_tile(100, 600)).total_cycles
        # 8 tiles over 4 cores -> 2 tiles per core.
        assert report.total_cycles == pytest.approx(2 * single)
        assert report.tiles == 8

    def test_empty_tiles_skipped(self):
        report = RasterEngineSim().simulate_frame([0, 50], [0, 200])
        assert report.tiles == 1

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            RasterEngineSim().simulate_frame([1, 2], [3])


class TestPreprocessEngineSim:
    def test_bottleneck_identification(self):
        sim = PreprocessEngineSim()
        report = sim.simulate_frame(1_000_000, 100_000, 200_000)
        assert report.bottleneck == "projection"
        report = sim.simulate_frame(1_000_000, 900_000, 8_000_000)
        assert report.bottleneck == "duplication"

    def test_latency_is_max_stage_plus_fill(self):
        report = PreprocessEngineSim().simulate_frame(4000, 2000, 4000)
        assert report.total_cycles == pytest.approx(
            max(report.projection_cycles, report.color_cycles, report.duplication_cycles)
            + 64
        )

    def test_validation(self):
        sim = PreprocessEngineSim()
        with pytest.raises(ValueError):
            sim.simulate_frame(-1, 0, 0)
        with pytest.raises(ValueError):
            sim.simulate_frame(10, 20, 0)
