"""Property-based tests (hypothesis) for the core data structures.

Invariants checked:

* the BSU bitonic network sorts any input and is a permutation;
* the MSU+ merge of sorted inputs is sorted, complete, and respects filters;
* Dynamic Partial Sorting is a permutation, chunk-locally sorted, and
  converges to a full sort under repeated alternating-boundary passes for
  bounded perturbations;
* chunk boundaries cover [0, n) exactly once at every iteration parity;
* the Gaussian table keeps ids/depths/valid aligned through any sequence of
  operations;
* Kendall-tau distance stays within [0, 1] and is symmetric.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitonic import bitonic_sort_16, bsu_sort_chunk
from repro.core.dynamic_partial_sort import (
    chunk_ranges,
    dynamic_partial_sort,
    full_sort,
    sortedness,
)
from repro.core.gaussian_table import GaussianTable
from repro.core.merge_unit import merge_runs, merge_sorted
from repro.pipeline.sorting import kendall_tau_distance

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@given(st.lists(finite_floats, min_size=0, max_size=16))
def test_bitonic_sorts_any_input(keys):
    out, _ = bitonic_sort_16(np.asarray(keys))
    assert np.array_equal(out, np.sort(np.asarray(keys)))


@given(st.lists(finite_floats, min_size=1, max_size=16))
def test_bitonic_values_form_permutation(keys):
    keys = np.asarray(keys)
    values = np.arange(keys.shape[0])
    out_keys, out_vals = bitonic_sort_16(keys, values)
    assert np.array_equal(np.sort(out_vals), values)
    assert np.array_equal(keys[out_vals], out_keys)


@given(st.lists(finite_floats, min_size=0, max_size=120))
@settings(max_examples=30)
def test_bsu_chunk_plus_merge_equals_sort(keys):
    keys = np.asarray(keys)
    values = np.arange(keys.shape[0])
    sub_keys, sub_vals, runs = bsu_sort_chunk(keys, values)
    merged_keys, merged_vals = merge_runs(sub_keys, sub_vals, runs)
    assert np.array_equal(merged_keys, np.sort(keys))
    if keys.shape[0]:
        assert np.array_equal(keys[merged_vals], merged_keys)


@given(
    st.lists(finite_floats, min_size=0, max_size=60),
    st.lists(finite_floats, min_size=0, max_size=60),
)
def test_merge_sorted_properties(a, b):
    a = np.sort(np.asarray(a))
    b = np.sort(np.asarray(b))
    keys, vals = merge_sorted(a, np.arange(a.size), b, np.arange(b.size))
    assert keys.shape[0] == a.size + b.size
    assert np.array_equal(keys, np.sort(np.concatenate([a, b])))


@given(
    st.lists(finite_floats, min_size=1, max_size=40),
    st.data(),
)
def test_merge_filter_drops_exactly_invalid(a, data):
    a = np.sort(np.asarray(a))
    valid = np.asarray(data.draw(st.lists(st.booleans(), min_size=a.size, max_size=a.size)))
    keys, vals = merge_sorted(
        a, np.arange(a.size), np.empty(0), np.empty(0, dtype=np.int64), valid_a=valid
    )
    assert keys.shape[0] == int(valid.sum())
    assert np.array_equal(keys, a[valid])


@given(
    st.integers(min_value=0, max_value=600),
    st.integers(min_value=2, max_value=64),
    st.integers(min_value=1, max_value=6),
)
def test_chunk_ranges_partition(length, chunk, iteration):
    ranges = chunk_ranges(length, chunk, iteration)
    covered = []
    for start, end in ranges:
        assert start < end
        covered.extend(range(start, end))
    assert covered == list(range(length))


@given(st.lists(finite_floats, min_size=0, max_size=300), st.integers(1, 5))
@settings(max_examples=30)
def test_partial_sort_is_permutation(keys, iteration):
    keys = np.asarray(keys)
    values = np.arange(keys.shape[0])
    out_keys, out_vals, _ = dynamic_partial_sort(keys, values, iteration=iteration, chunk_size=16)
    assert np.array_equal(np.sort(out_keys), np.sort(keys))
    if keys.shape[0]:
        assert np.array_equal(keys[out_vals], out_keys)


@given(st.data())
@settings(max_examples=20)
def test_partial_sort_converges_for_bounded_perturbation(data):
    n = data.draw(st.integers(min_value=8, max_value=200))
    chunk = 16
    seed = data.draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    keys = np.arange(n, dtype=np.float64) + rng.uniform(-chunk / 2, chunk / 2, size=n)
    values = np.arange(n)
    for iteration in range(1, 8):
        keys, values, _ = dynamic_partial_sort(keys, values, iteration=iteration, chunk_size=chunk)
    assert sortedness(keys) == 1.0


@given(st.lists(finite_floats, min_size=0, max_size=400))
@settings(max_examples=30)
def test_full_sort_matches_numpy(keys):
    keys = np.asarray(keys)
    out_keys, _, _ = full_sort(keys, np.arange(keys.shape[0]), chunk_size=32)
    assert np.array_equal(out_keys, np.sort(keys))


@given(st.data())
@settings(max_examples=30)
def test_gaussian_table_invariants(data):
    n = data.draw(st.integers(min_value=0, max_value=40))
    rng_seed = data.draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(rng_seed)
    ids = rng.permutation(1000)[:n]
    depths = np.sort(rng.random(n))
    table = GaussianTable.from_sorted(ids, depths)

    operations = data.draw(
        st.lists(st.sampled_from(["invalidate", "update", "compact"]), max_size=6)
    )
    for op in operations:
        if op == "invalidate" and n:
            table.mark_invalid(rng.choice(ids, size=min(3, n), replace=False))
        elif op == "update" and n:
            subset = rng.choice(ids, size=min(5, n), replace=False)
            table.update_depths(ids=subset, depths=rng.random(subset.size))
        elif op == "compact":
            table.compact()
        # Invariants after every operation:
        assert table.ids.shape == table.depths.shape == table.valid.shape
        assert len(np.unique(table.ids)) == len(table)
        assert table.num_valid <= len(table)


@given(st.integers(min_value=2, max_value=30), st.data())
@settings(max_examples=30)
def test_kendall_tau_bounds_and_symmetry(n, data):
    seed = data.draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    a = rng.permutation(n)
    b = rng.permutation(n)
    d_ab = kendall_tau_distance(a, b)
    d_ba = kendall_tau_distance(b, a)
    assert 0.0 <= d_ab <= 1.0
    assert d_ab == d_ba
