"""Tests for the multi-tenant simulation service.

Covers the tentpole contracts: N-client identical-cell storms resolve to
exactly one execution, bounded-queue admission rejects overload, waiter
timeouts never cancel the shared execution, a client disconnecting
mid-coalesce leaves the remaining waiters whole, tenants get isolated
cache namespaces, and the loadgen's responses are byte-identical to
direct engine execution.

The edge-case tests drive the real asyncio server in-process with a
controllable ``simulate_fn`` (a ``threading.Event``-gated stub running in
the worker pool's executor threads), so "worker busy" and "queue full"
states are deterministic rather than timing-dependent.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.experiments.engine import SimJob
from repro.hw.stages import FrameReport, SequenceReport, StageTraffic
from repro.service import (
    LoadGenConfig,
    ServiceConfig,
    SimulationServer,
    build_traffic,
    run_loadgen,
)
from repro.service.loadgen import _Client
from repro.service import protocol


def make_report(system: str = "neo", scene: str = "family") -> SequenceReport:
    return SequenceReport(
        system=system,
        scene=scene,
        resolution=(8, 8),
        frames=[FrameReport(0, StageTraffic(100.0, 20.0, 30.0), 1e-3, 2e-3)],
    )


def job_payload(frames: int = 1, scene: str = "family") -> dict:
    return SimJob.make("neo", scene, "hd", frames=frames).to_payload()


async def wait_until(predicate, timeout_s: float = 5.0) -> None:
    deadline = time.perf_counter() + timeout_s
    while not predicate():
        if time.perf_counter() > deadline:
            raise AssertionError("condition not reached before timeout")
        await asyncio.sleep(0.01)


class GatedSim:
    """simulate_fn stub: blocks worker threads until released."""

    def __init__(self) -> None:
        self.gate = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, job: SimJob) -> SequenceReport:
        with self._lock:
            self.calls += 1
        assert self.gate.wait(timeout=10.0), "test never released the gate"
        return make_report(job.system, job.scene)


async def start_server(**kwargs) -> SimulationServer:
    kwargs.setdefault("cache_dir", None)
    config = ServiceConfig(port=0, **kwargs)
    server = SimulationServer(config)
    await server.start()
    return server


async def connect(server: SimulationServer) -> _Client:
    client = _Client("127.0.0.1", server.port)
    await client.connect()
    return client


class TestCoalescing:
    def test_identical_cell_storm_executes_once(self):
        async def scenario():
            sim = GatedSim()
            server = await start_server(workers=2, simulate_fn=sim)
            clients = [await connect(server) for _ in range(6)]
            try:
                # All six clients ask for the same cell while it is blocked
                # in the worker: one execution, five coalesced joins.
                tasks = [
                    asyncio.create_task(
                        c.request(
                            {"op": "simulate", "tenant": f"t{i}", "job": job_payload()}
                        )
                    )
                    for i, c in enumerate(clients)
                ]
                await wait_until(lambda: sim.calls == 1)
                await wait_until(lambda: server.metrics.coalesced == 5)
                sim.gate.set()
                responses = await asyncio.gather(*tasks)
            finally:
                for c in clients:
                    await c.close()
                await server.stop()
            assert [r["status"] for r in responses] == ["ok"] * 6
            assert sim.calls == 1
            assert server.metrics.executions == 1
            assert server.metrics.coalesced == 5
            assert server.metrics.coalesce_rate == pytest.approx(5 / 6)
            origins = sorted(r["origin"] for r in responses)
            assert origins == ["coalesced"] * 5 + ["executed"]
            payloads = {protocol.canonical_bytes(r["report"]) for r in responses}
            assert len(payloads) == 1  # every waiter saw the same result

        asyncio.run(scenario())

    def test_distinct_cells_do_not_coalesce(self):
        async def scenario():
            sim = GatedSim()
            sim.gate.set()  # never block
            server = await start_server(workers=2, simulate_fn=sim)
            client = await connect(server)
            try:
                for frames in (1, 2, 3):
                    response = await client.request(
                        {"op": "simulate", "job": job_payload(frames=frames)}
                    )
                    assert response["status"] == "ok"
            finally:
                await client.close()
                await server.stop()
            assert server.metrics.executions == 3
            assert server.metrics.coalesced == 0

        asyncio.run(scenario())


class TestAdmissionControl:
    def test_queue_full_rejection(self):
        async def scenario():
            sim = GatedSim()
            server = await start_server(workers=1, queue_limit=1, simulate_fn=sim)
            client = await connect(server)
            try:
                # A occupies the single worker; B fills the single queue
                # slot; C must be rejected with explicit backpressure.
                task_a = asyncio.create_task(
                    client.request({"op": "simulate", "job": job_payload(frames=1)})
                )
                await wait_until(lambda: sim.calls == 1)
                task_b = asyncio.create_task(
                    client.request({"op": "simulate", "job": job_payload(frames=2)})
                )
                await wait_until(lambda: server._queue.full())
                rejected = await client.request(
                    {"op": "simulate", "job": job_payload(frames=3)}
                )
                assert rejected["status"] == "rejected"
                assert rejected["reason"] == "queue_full"
                assert server.metrics.rejected == 1
                # A coalesced join on the *queued* cell is still admitted:
                # it adds no work to the queue.
                task_b2 = asyncio.create_task(
                    client.request({"op": "simulate", "job": job_payload(frames=2)})
                )
                await wait_until(lambda: server.metrics.coalesced == 1)
                sim.gate.set()
                responses = await asyncio.gather(task_a, task_b, task_b2)
            finally:
                await client.close()
                await server.stop()
            assert [r["status"] for r in responses] == ["ok"] * 3
            assert server.metrics.executions == 2

        asyncio.run(scenario())

    def test_retry_accounting(self):
        async def scenario():
            sim = GatedSim()
            sim.gate.set()
            server = await start_server(workers=1, simulate_fn=sim)
            client = await connect(server)
            try:
                response = await client.request(
                    {"op": "simulate", "job": job_payload(), "attempt": 2}
                )
                assert response["status"] == "ok"
            finally:
                await client.close()
                await server.stop()
            assert server.metrics.retries == 1

        asyncio.run(scenario())


class TestTimeouts:
    def test_waiter_timeout_does_not_cancel_execution(self):
        async def scenario():
            sim = GatedSim()
            server = await start_server(workers=1, simulate_fn=sim)
            client = await connect(server)
            try:
                timed_out = await client.request(
                    {"op": "simulate", "job": job_payload(), "timeout_s": 0.05}
                )
                assert timed_out["status"] == "timeout"
                assert server.metrics.timeouts == 1
                # The execution survived the waiter's timeout: releasing the
                # gate lets a second request for the same cell coalesce onto
                # it (or re-execute if it already finished) and succeed.
                second = asyncio.create_task(
                    client.request(
                        {"op": "simulate", "job": job_payload(), "timeout_s": 10.0}
                    )
                )
                sim.gate.set()
                response = await second
                assert response["status"] == "ok"
            finally:
                await client.close()
                await server.stop()

        asyncio.run(scenario())


class TestDisconnects:
    def test_disconnect_mid_coalesce_leaves_other_waiters_whole(self):
        async def scenario():
            sim = GatedSim()
            server = await start_server(workers=1, simulate_fn=sim)
            leaver = await connect(server)
            stayer = await connect(server)
            try:
                doomed = asyncio.create_task(
                    leaver.request({"op": "simulate", "job": job_payload()})
                )
                await wait_until(lambda: sim.calls == 1)
                surviving = asyncio.create_task(
                    stayer.request({"op": "simulate", "job": job_payload()})
                )
                await wait_until(lambda: server.metrics.coalesced == 1)
                # The initiating client vanishes while the execution runs.
                await leaver.close()
                doomed.cancel()
                sim.gate.set()
                response = await surviving
                assert response["status"] == "ok"
                assert server.metrics.executions == 1
                await wait_until(lambda: server.metrics.disconnects >= 1)
            finally:
                await stayer.close()
                await server.stop()

        asyncio.run(scenario())


class TestTenantCaches:
    def test_tenant_isolation_and_shared_opt_in(self, tmp_path):
        async def scenario():
            sim = GatedSim()
            sim.gate.set()
            server = await start_server(
                workers=1, simulate_fn=sim, cache_dir=str(tmp_path / "svc")
            )
            client = await connect(server)
            try:
                async def simulate(tenant, shared=False):
                    return await client.request(
                        {
                            "op": "simulate",
                            "tenant": tenant,
                            "job": job_payload(),
                            "shared_cache": shared,
                        }
                    )

                first = await simulate("acme")
                assert first["origin"] == "executed"
                # Same tenant, same cell: served from acme's namespace.
                assert (await simulate("acme"))["origin"] == "cache"
                # Different tenant: acme's row is invisible -> re-executes.
                assert (await simulate("globex"))["origin"] == "executed"
                # Shared namespace is opt-in for both sides.
                assert (await simulate("acme", shared=True))["origin"] == "executed"
                assert (await simulate("globex", shared=True))["origin"] == "cache"
            finally:
                await client.close()
                await server.stop()
            assert (tmp_path / "svc" / "tenants" / "acme" / "reports").is_dir()
            assert (tmp_path / "svc" / "tenants" / "globex" / "reports").is_dir()
            assert (tmp_path / "svc" / "reports").is_dir()  # shared opt-in rows
            assert server.metrics.cache_hits == 2
            assert server.metrics.executions == 3

        asyncio.run(scenario())

    def test_invalid_tenant_name_is_an_error_response(self, tmp_path):
        async def scenario():
            server = await start_server(
                workers=1, cache_dir=str(tmp_path / "svc"), simulate_fn=lambda j: make_report()
            )
            client = await connect(server)
            try:
                response = await client.request(
                    {"op": "simulate", "tenant": "../escape", "job": job_payload()}
                )
                assert response["status"] == "error"
                assert "tenant" in response["error"]
            finally:
                await client.close()
                await server.stop()

        asyncio.run(scenario())


class TestProtocol:
    def test_job_payload_round_trip(self):
        job = SimJob.make("neo", "family", "qhd", frames=4, speed=2.0, cores=8)
        assert SimJob.from_payload(job.to_payload()) == job

    def test_job_payload_normalizes_spellings(self):
        a = SimJob.from_payload({"system": "neo", "scene": "family", "resolution": "hd",
                                 "frames": 2, "speed": 1, "cores": 16.0})
        b = SimJob.make("neo", "family", "hd", frames=2)
        assert a == b

    def test_report_payload_round_trip(self):
        report = make_report()
        payload = protocol.report_to_payload(report)
        rebuilt = protocol.report_from_payload(payload)
        assert protocol.report_to_payload(rebuilt) == payload
        # Canonical bytes are stable across a JSON round trip.
        import json

        reparsed = json.loads(protocol.canonical_bytes(payload))
        assert protocol.canonical_bytes(reparsed) == protocol.canonical_bytes(payload)

    def test_unknown_op_and_ping(self):
        async def scenario():
            server = await start_server(workers=1)
            client = await connect(server)
            try:
                pong = await client.request({"op": "ping"})
                assert pong["status"] == "ok"
                assert pong["protocol"] == protocol.PROTOCOL
                bad = await client.request({"op": "warp"})
                assert bad["status"] == "error"
            finally:
                await client.close()
                await server.stop()

        asyncio.run(scenario())

    def test_unknown_system_is_an_error_response(self):
        async def scenario():
            server = await start_server(workers=1)
            client = await connect(server)
            try:
                response = await client.request(
                    {"op": "simulate",
                     "job": {"system": "tpu", "scene": "family", "resolution": "hd"}}
                )
                assert response["status"] == "error"
                assert "tpu" in response["error"]
            finally:
                await client.close()
                await server.stop()

        asyncio.run(scenario())


class TestBatchedRollouts:
    def test_worker_drains_queue_and_reports_stay_byte_identical(self):
        # Queue four stackable cells before the worker starts: batched mode
        # must drain them in one pass, stack the compatible groups, and
        # resolve every future with a report byte-identical to direct
        # per-cell simulation.
        async def scenario():
            from concurrent.futures import ThreadPoolExecutor

            from repro.runtime.cache import stable_key
            from repro.service.server import _Execution

            jobs = [
                SimJob.make("neo", "family", "hd", frames=2, bandwidth_gbps=bw).resolved()
                for bw in (20.0, 35.0, 52.0)
            ]
            jobs.append(SimJob.make("gscore", "family", "hd", frames=2).resolved())
            server = SimulationServer(
                ServiceConfig(port=0, workers=1, cache_dir=None, batched=True)
            )
            server._executor = ThreadPoolExecutor(max_workers=1)
            loop = asyncio.get_running_loop()
            executions = [
                _Execution(stable_key(job.cache_payload()), job, loop.create_future())
                for job in jobs
            ]
            for execution in executions:
                server._inflight[execution.key] = execution
                server._queue.put_nowait(execution)
            worker = asyncio.create_task(server._worker())
            try:
                reports = await asyncio.gather(*(e.future for e in executions))
            finally:
                worker.cancel()
                server._executor.shutdown(wait=False)
            return server, jobs, reports

        server, jobs, reports = asyncio.run(scenario())
        assert server.metrics.executions == len(jobs)
        assert server.metrics.rollout_stacked == len(jobs)
        assert server.metrics.rollout_fallback == 0
        assert not server._inflight
        for job, report in zip(jobs, reports):
            direct = protocol.canonical_bytes(protocol.report_to_payload(job.simulate()))
            served = protocol.canonical_bytes(protocol.report_to_payload(report))
            assert served == direct

    def test_batched_flag_surfaces_in_stats_config(self):
        async def scenario():
            server = await start_server(workers=1, batched=True)
            client = await connect(server)
            try:
                response = await client.request({"op": "stats"})
            finally:
                await client.close()
                await server.stop()
            return response

        response = asyncio.run(scenario())
        assert response["status"] == "ok"
        assert response["config"]["batched"] is True
        assert "rollout_stacked" in response["metrics"]


class TestLoadGen:
    def test_traffic_is_seed_deterministic(self):
        config = LoadGenConfig(requests=50, seed=9)
        pool_a, cells_a, tenants_a, arrivals_a = build_traffic(config)
        pool_b, cells_b, tenants_b, arrivals_b = build_traffic(config)
        assert pool_a == pool_b
        assert (cells_a == cells_b).all()
        assert (tenants_a == tenants_b).all()
        assert (arrivals_a == arrivals_b).all()
        # Arrival offsets are an open-loop cumulative process.
        assert (arrivals_a[1:] >= arrivals_a[:-1]).all()

    @pytest.mark.slow
    def test_end_to_end_byte_identity_and_artifact(self, tmp_path):
        async def scenario():
            server = await start_server(workers=2, queue_limit=16)
            config = LoadGenConfig(
                port=server.port,
                requests=24,
                rate=400.0,
                tenants=3,
                seed=3,
                frames=1,
                scenes=("horse",),
                systems=("neo", "orin"),
                pool_size=3,
                wait_server_s=5.0,
            )
            try:
                result = await run_loadgen(config, verify=True)
            finally:
                await server.stop()
            return result

        result = asyncio.run(scenario())
        assert result.ok
        assert result.verification["byte_identical"]
        assert result.verification["checked"] >= 1
        artifact = result.artifact()
        assert artifact["schema"] == "repro-service-bench/1"
        assert artifact["results"]["ok"] == 24
        assert artifact["latency_ms"]["p50"] > 0
        assert artifact["throughput_rps"] > 0
        # 24 requests over <= 3 distinct cells must coalesce somewhere.
        assert artifact["server"]["coalesced"] > 0
        assert artifact["server"]["coalesce_rate"] > 0
