"""Edge-case and failure-injection tests across the pipeline.

Degenerate inputs a downstream user will eventually hit: empty scenes,
cameras seeing nothing, single-splat scenes, tiles that empty out entirely
mid-sequence, and Neo state surviving all of it.
"""

import numpy as np
import pytest

from repro.core import NeoSortStrategy
from repro.pipeline import Renderer
from repro.scene import Camera, GaussianScene, load_scene, look_at


def _empty_scene() -> GaussianScene:
    return GaussianScene(
        means=np.zeros((0, 3)),
        scales=np.zeros((0, 3)),
        quats=np.zeros((0, 4)),
        opacities=np.zeros(0),
        sh_coeffs=np.zeros((0, 1, 3)),
    )


def _single_gaussian_scene() -> GaussianScene:
    return GaussianScene(
        means=np.array([[0.0, 0.0, 0.0]]),
        scales=np.array([[0.3, 0.3, 0.3]]),
        quats=np.array([[1.0, 0.0, 0.0, 0.0]]),
        opacities=np.array([0.9]),
        sh_coeffs=np.zeros((1, 1, 3)),
    )


def _camera(eye, target, width=96, height=54) -> Camera:
    return Camera.from_fov(
        width=width, height=height, fov_y_degrees=60.0,
        world_to_camera=look_at(np.asarray(eye, dtype=float), np.asarray(target, dtype=float)),
    )


class TestEmptyScene:
    def test_render_black_frame(self):
        record = Renderer(_empty_scene()).render(_camera([0, 0, -5], [0, 0, 0]))
        assert record.image.shape == (54, 96, 3)
        assert np.all(record.image == 0.0)
        assert record.stats.num_pairs == 0

    def test_neo_strategy_on_empty_scene(self):
        neo = NeoSortStrategy()
        renderer = Renderer(_empty_scene(), strategy=neo)
        for i in range(3):
            renderer.render(_camera([0, 0, -5], [0, 0, 0]), frame_index=i)
        assert neo.frame_stats[-1].table_entries_after == 0


class TestNothingVisible:
    def test_camera_looking_away(self, small_scene):
        # Camera at the scene center looking outward past everything.
        camera = _camera([0, 300, 0], [0, 600, 0])
        record = Renderer(small_scene).render(camera)
        assert record.stats.num_pairs == 0
        assert np.all(record.image == 0.0)

    def test_neo_survives_blackout_frames(self, small_scene):
        # Visible -> nothing visible -> visible again: tables must empty
        # and rebuild without stale ghosts.
        neo = NeoSortStrategy()
        renderer = Renderer(small_scene, strategy=neo)
        good = _camera([6, 1.2, 0], [0, 0, 0], width=128, height=72)
        blackout = _camera([0, 300, 0], [0, 600, 0], width=128, height=72)
        first = renderer.render(good, frame_index=0)
        renderer.render(blackout, frame_index=1)
        third = renderer.render(good, frame_index=2)
        assert first.stats.num_pairs > 0
        assert third.stats.num_pairs > 0
        # Quality after the blackout matches a fresh exact render.
        reference = Renderer(small_scene).render(good)
        assert np.abs(reference.image - third.image).max() < 0.25


class TestSingleGaussian:
    def test_renders_and_reuses(self):
        scene = _single_gaussian_scene()
        neo = NeoSortStrategy()
        renderer = Renderer(scene, strategy=neo)
        camera = _camera([0, 0, -3], [0, 0, 0])
        for i in range(3):
            record = renderer.render(camera, frame_index=i)
        assert record.image.max() >= 0.0
        assert neo.frame_stats[-1].table_entries_after >= 1

    def test_camera_inside_gaussian(self):
        # Degenerate view direction (camera at the splat mean) must not NaN.
        scene = _single_gaussian_scene()
        camera = _camera([0, 0, 0], [0, 0, 1])
        record = Renderer(scene).render(camera)
        assert np.isfinite(record.image).all()


class TestTinyViewports:
    @pytest.mark.parametrize("width,height", [(1, 1), (16, 16), (17, 13)])
    def test_odd_resolutions(self, width, height):
        scene = load_scene("horse", num_gaussians=100)
        camera = _camera([5, 1, 0], [0, 0, 0], width=width, height=height)
        record = Renderer(scene).render(camera)
        assert record.image.shape == (height, width, 3)
        assert np.isfinite(record.image).all()

    def test_tile_bigger_than_image(self):
        scene = load_scene("horse", num_gaussians=100)
        camera = _camera([5, 1, 0], [0, 0, 0], width=40, height=30)
        record = Renderer(scene, tile_size=64).render(camera)
        assert record.assignment.grid.num_tiles == 1
        assert np.isfinite(record.image).all()


class TestExtremeOpacity:
    def test_fully_opaque_wall_terminates(self):
        # A wall of near-opaque splats in front must hide everything behind.
        n = 40
        means = np.zeros((n, 3))
        means[: n // 2, 2] = 1.0   # front wall
        means[n // 2 :, 2] = 5.0   # back layer
        rng = np.random.default_rng(0)
        means[:, :2] = rng.uniform(-0.5, 0.5, size=(n, 2))
        sh = np.zeros((n, 1, 3))
        sh[n // 2 :, 0, 0] = 10.0  # back is bright red if visible
        scene = GaussianScene(
            means=means,
            scales=np.full((n, 3), 0.4),
            quats=np.tile([1.0, 0, 0, 0], (n, 1)),
            opacities=np.full(n, 0.999),
            sh_coeffs=sh,
        )
        camera = _camera([0, 0, -3], [0, 0, 1])
        record = Renderer(scene).render(camera)
        center = record.image[27, 48]
        assert center[0] < 0.6  # back red mostly occluded
