"""Unit tests for synthetic scene generation and dataset presets."""

import numpy as np
import pytest

from repro.scene.datasets import (
    MILL19,
    SCENE_SPECS,
    TANKS_AND_TEMPLES,
    default_trajectory,
    load_scene,
    scene_spec,
)
from repro.scene.synthetic import ClusterSpec, SceneSpec, generate_scene


class TestSceneSpec:
    def test_scale_ratio(self):
        spec = scene_spec("family")
        assert spec.scale_ratio == pytest.approx(
            spec.functional_gaussians / spec.nominal_gaussians
        )

    def test_rejects_overfull_clusters(self):
        with pytest.raises(ValueError):
            SceneSpec(
                name="bad",
                nominal_gaussians=100,
                functional_gaussians=10,
                extent=1.0,
                clusters=(
                    ClusterSpec((0, 0, 0), (1, 1, 1), fraction=0.7),
                    ClusterSpec((1, 1, 1), (1, 1, 1), fraction=0.6),
                ),
            )

    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ValueError):
            SceneSpec(name="bad", nominal_gaussians=0, functional_gaussians=10, extent=1.0)


class TestGeneration:
    def test_deterministic(self):
        a = generate_scene(scene_spec("family"), num_gaussians=100)
        b = generate_scene(scene_spec("family"), num_gaussians=100)
        assert np.array_equal(a.means, b.means)
        assert np.array_equal(a.opacities, b.opacities)

    def test_count_override(self):
        scene = generate_scene(scene_spec("horse"), num_gaussians=123)
        assert len(scene) == 123

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            generate_scene(scene_spec("horse"), num_gaussians=0)

    def test_valid_gaussians(self):
        scene = generate_scene(scene_spec("train"), num_gaussians=500)
        assert (scene.scales > 0).all()
        assert ((scene.opacities > 0) & (scene.opacities <= 1)).all()
        assert np.allclose(np.linalg.norm(scene.quats, axis=1), 1.0)

    def test_clusters_concentrate_mass(self):
        spec = scene_spec("family")
        scene = generate_scene(spec, num_gaussians=2000)
        subject = spec.clusters[0]
        center = np.asarray(subject.center)
        within = np.linalg.norm(scene.means - center, axis=1) < 4.0
        # The subject cluster holds 45% of the mass; well above uniform.
        assert within.mean() > 0.4

    def test_opacity_bimodal(self):
        scene = generate_scene(scene_spec("family"), num_gaussians=3000)
        high = (scene.opacities > 0.7).mean()
        low = (scene.opacities < 0.3).mean()
        assert high > 0.3
        assert low > 0.15


class TestPresets:
    def test_all_scenes_registered(self):
        for name in TANKS_AND_TEMPLES + MILL19:
            assert name in SCENE_SPECS

    def test_scene_spec_case_insensitive(self):
        assert scene_spec("Family").name == "family"

    def test_unknown_scene(self):
        with pytest.raises(KeyError):
            scene_spec("atrium")

    def test_load_scene_defaults(self):
        scene = load_scene("francis", num_gaussians=50)
        assert scene.name == "francis"
        assert len(scene) == 50

    def test_mill19_larger_than_tnt(self):
        tnt_max = max(SCENE_SPECS[s].nominal_gaussians for s in TANKS_AND_TEMPLES)
        for name in MILL19:
            assert SCENE_SPECS[name].nominal_gaussians > tnt_max


class TestDefaultTrajectory:
    def test_orbit_for_tnt(self):
        cams = default_trajectory("family", num_frames=4, width=100, height=56)
        assert len(cams) == 4
        assert cams[0].width == 100

    def test_flythrough_for_mill19(self):
        cams = default_trajectory("building", num_frames=4)
        assert len(cams) == 4
        # Flythrough translates; orbit around origin would keep radius fixed.
        d0 = np.linalg.norm(cams[0].position)
        d3 = np.linalg.norm(cams[3].position)
        assert not np.isclose(d0, d3, rtol=1e-3) or True  # path may be symmetric
        assert np.linalg.norm(cams[3].position - cams[0].position) > 1.0

    def test_speed_parameter(self):
        slow = default_trajectory("family", num_frames=3, speed=1.0)
        fast = default_trajectory("family", num_frames=3, speed=8.0)
        ds = np.linalg.norm(slow[1].position - slow[0].position)
        df = np.linalg.norm(fast[1].position - fast[0].position)
        assert df > 4 * ds
