"""Scene substrate: Gaussians, cameras, trajectories, and synthetic datasets."""

from .camera import Camera, RESOLUTIONS, look_at, resolution
from .datasets import (
    MILL19,
    SCENE_SPECS,
    TANKS_AND_TEMPLES,
    TRAJECTORY_ARCHETYPES,
    archetype_trajectory,
    default_trajectory,
    load_scene,
    scene_spec,
)
from .io import FORMAT_VERSION, load_scene_file, save_scene
from .gaussians import (
    FEATURE_TABLE_ENTRY_BYTES,
    GaussianScene,
    build_covariances,
    quaternions_to_rotations,
)
from .sh import eval_sh_color, normalize_directions, num_sh_coeffs, rgb_to_sh_dc, sh_basis
from .synthetic import ClusterSpec, SceneSpec, generate_scene
from .trajectory import (
    TrajectoryConfig,
    dolly_trajectory,
    flythrough_trajectory,
    iter_frame_pairs,
    orbit_trajectory,
    pan_trajectory,
    shake_trajectory,
    teleport_trajectory,
)

__all__ = [
    "Camera",
    "FORMAT_VERSION",
    "load_scene_file",
    "save_scene",
    "ClusterSpec",
    "FEATURE_TABLE_ENTRY_BYTES",
    "GaussianScene",
    "MILL19",
    "RESOLUTIONS",
    "SCENE_SPECS",
    "SceneSpec",
    "TANKS_AND_TEMPLES",
    "TRAJECTORY_ARCHETYPES",
    "TrajectoryConfig",
    "archetype_trajectory",
    "build_covariances",
    "default_trajectory",
    "dolly_trajectory",
    "eval_sh_color",
    "flythrough_trajectory",
    "generate_scene",
    "iter_frame_pairs",
    "load_scene",
    "look_at",
    "normalize_directions",
    "num_sh_coeffs",
    "orbit_trajectory",
    "pan_trajectory",
    "quaternions_to_rotations",
    "resolution",
    "rgb_to_sh_dc",
    "scene_spec",
    "sh_basis",
    "shake_trajectory",
    "teleport_trajectory",
]
