"""Shared infrastructure for the per-figure experiment drivers.

Each driver in this package regenerates one table or figure from the paper:
it builds the required workloads, runs the relevant system models or the
functional pipeline, and returns an :class:`ExperimentResult` whose rows
mirror the figure's data series.  Workload models are cached per
(scene, frames, speed, count) in-process, and — when the active
:class:`RunnerConfig` carries a :class:`~repro.runtime.cache.ResultCache` —
captured geometry and :class:`~repro.hw.stages.SequenceReport`\\ s persist
across invocations on disk.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from ..hw.config import DramConfig
from ..hw.stages import SequenceReport
from ..hw.system import get_system, registered_systems
from ..hw.workload import WorkloadModel

if TYPE_CHECKING:
    from ..runtime.cache import ResultCache

#: Default frames simulated per sequence (see :class:`RunnerConfig`).  The
#: paper renders 60; traffic totals are reported via
#: :meth:`SequenceReport.traffic_gb_for` so the extrapolation is explicit.
DEFAULT_FRAMES = 12

#: Frames the paper's traffic figures accumulate over.
PAPER_TRAFFIC_FRAMES = 60


@dataclass
class RunnerConfig:
    """Execution parameters shared by every experiment driver.

    Attributes
    ----------
    frames:
        Frames simulated per sequence for drivers that don't pin their own
        count; ``None`` means :data:`DEFAULT_FRAMES`.  A parameter here (not
        an import-time constant) so the CLI can override it and cache keys
        can include the resolved value.
    cache:
        Disk-backed result cache consulted by :func:`get_workload_model` and
        :func:`simulate_system`; ``None`` disables persistence.
    """

    frames: int | None = None
    cache: "ResultCache | None" = None


_active_config = RunnerConfig()


def get_runner_config() -> RunnerConfig:
    """The configuration drivers currently resolve defaults against."""
    return _active_config


def set_runner_config(config: RunnerConfig) -> RunnerConfig:
    """Install a new active configuration; returns the previous one."""
    global _active_config
    previous = _active_config
    _active_config = config
    return previous


@contextmanager
def runner_config(config: RunnerConfig) -> Iterator[RunnerConfig]:
    """Scope a :class:`RunnerConfig` to a ``with`` block."""
    previous = set_runner_config(config)
    try:
        yield config
    finally:
        set_runner_config(previous)


def resolve_frames(num_frames: int | None = None) -> int:
    """Resolve a driver's ``num_frames`` argument against the active config."""
    if num_frames is not None:
        return num_frames
    config_frames = _active_config.frames
    return DEFAULT_FRAMES if config_frames is None else config_frames


@dataclass
class ExperimentResult:
    """Output of one experiment driver.

    Attributes
    ----------
    name:
        Experiment identifier (e.g. ``"fig15"``).
    description:
        What the paper figure/table shows.
    rows:
        One dict per data point, mirroring the figure's series.
    """

    name: str
    description: str
    rows: list[dict] = field(default_factory=list)

    def columns(self) -> list[str]:
        """Union of row keys in first-seen order (stable across runs)."""
        seen: dict[str, None] = {}
        for row in self.rows:
            for key in row:
                seen.setdefault(key, None)
        return list(seen)

    def to_text(self) -> str:
        """Render the rows as an aligned text table.

        Columns are the union of keys across *all* rows (headers used to come
        from ``rows[0]``, silently dropping columns that first appear in a
        later row); cells a row doesn't carry render as ``-``.
        """
        if not self.rows:
            return f"{self.name}: (no rows)"
        keys = self.columns()
        widths = {
            k: max(len(k), *(len(_cell(r, k)) for r in self.rows)) for k in keys
        }
        header = "  ".join(k.ljust(widths[k]) for k in keys)
        lines = [f"== {self.name}: {self.description} ==", header]
        for row in self.rows:
            lines.append("  ".join(_cell(row, k).ljust(widths[k]) for k in keys))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Plain-dict artifact form: a pure function of (result, code version)."""
        from ..runtime.cache import code_version

        return {
            "name": self.name,
            "description": self.description,
            "code_version": code_version(),
            "rows": self.rows,
        }

    def write_json(self, path) -> "Path":
        """Write a deterministic JSON artifact (sorted keys, trailing newline).

        Serial, parallel, cold, and warm executions of the same experiment at
        the same code version produce byte-identical files.
        """
        import json

        from ..runtime.cache import _json_default

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True, default=_json_default)
            handle.write("\n")
        return path

    def write_csv(self, path) -> "Path":
        """Write the rows as CSV over the union of columns (missing -> empty)."""
        import csv

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=self.columns(), restval="")
            writer.writeheader()
            for row in self.rows:
                writer.writerow({k: ("" if v is None else v) for k, v in row.items()})
        return path

    def column(self, key: str) -> list:
        """Extract one column across all rows."""
        return [row[key] for row in self.rows]

    def filter(self, **conditions) -> "list[dict]":
        """Rows matching all key=value conditions."""
        return [
            row
            for row in self.rows
            if all(row.get(k) == v for k, v in conditions.items())
        ]


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def _cell(row: dict, key: str) -> str:
    """One table cell: ``-`` when the row doesn't carry the column at all."""
    return _fmt(row[key]) if key in row else "-"


def get_workload_model(
    scene: str,
    num_frames: int | None = None,
    speed: float = 1.0,
    num_gaussians: int | None = None,
) -> WorkloadModel:
    """Workload-model capture for a scene preset.

    Memoized in-process; with a cache in the active :class:`RunnerConfig`,
    captured frame geometry also persists to disk, so a warm invocation
    skips culling and projection entirely.
    """
    return _workload_model_cached(scene, resolve_frames(num_frames), speed, num_gaussians)


@lru_cache(maxsize=64)
def _workload_model_cached(
    scene: str, num_frames: int, speed: float, num_gaussians: int | None
) -> WorkloadModel:
    cache = _active_config.cache
    payload = {
        "kind": "workload",
        "scene": scene,
        "frames": num_frames,
        "speed": speed,
        "gaussians": num_gaussians,
    }
    if cache is not None:
        cached = cache.get("workloads", payload)
        if cached is not None:
            return WorkloadModel(**cached)
    wm = WorkloadModel.from_scene(
        scene, num_frames=num_frames, speed=speed, num_gaussians=num_gaussians
    )
    if cache is not None:
        cache.put(
            "workloads",
            payload,
            {
                "frames": wm.frames,
                "capture_width": wm.capture_width,
                "capture_height": wm.capture_height,
                "count_scale": wm.count_scale,
                "functional_gaussians": wm.functional_gaussians,
                "scene_name": wm.scene_name,
            },
        )
    return wm


def simulate_system(
    system: str,
    scene: str,
    resolution: str,
    num_frames: int | None = None,
    speed: float = 1.0,
    cores: int = 16,
    bandwidth_gbps: float = 51.2,
    **model_kwargs,
) -> SequenceReport:
    """Simulate one (system, scene, resolution) cell.

    ``system`` is any name in the hardware registry (:data:`SYSTEMS`, i.e.
    :func:`repro.hw.system.registered_systems`; enumerate with ``repro
    systems list``).  ``dram_policy="edge"`` systems use the given DRAM
    bandwidth; ``"native"`` systems (the GPU) always run at their own
    memory system, e.g. Orin's 204.8 GB/s.  Reports are served from the
    active config's :class:`~repro.runtime.cache.ResultCache` when possible.
    """
    num_frames = resolve_frames(num_frames)
    cache = _active_config.cache
    payload = {
        "kind": "report",
        "system": system,
        "scene": scene,
        "resolution": resolution,
        "frames": num_frames,
        "speed": speed,
        "cores": cores,
        "bandwidth": bandwidth_gbps,
        "kwargs": model_kwargs,
    }
    if cache is not None:
        cached = cache.get("reports", payload)
        if cached is not None:
            return cached
    report = _simulate_system_uncached(
        system,
        scene,
        resolution,
        num_frames,
        speed,
        cores,
        bandwidth_gbps,
        **model_kwargs,
    )
    if cache is not None:
        cache.put("reports", payload, report)
    return report


def __getattr__(name: str):
    """Module attribute hook: ``SYSTEMS`` reads the live registry.

    The system names :func:`build_system_model` understands — resolved on
    every access (PEP 562) rather than snapshotted at import, so backends
    registered after this module loads still appear and the tuple can never
    drift from the actual dispatch.
    """
    if name == "SYSTEMS":
        return registered_systems()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def build_system_model(
    system: str,
    dram: DramConfig | None = None,
    cores: int = 16,
    **model_kwargs,
):
    """Instantiate a hardware model by name; returns ``(model, tile_size)``.

    Shared by :func:`simulate_system` and the sweep executor
    (:mod:`repro.sweeps.executor`).  Dispatch goes through the system
    registry (:func:`repro.hw.system.get_system`): an unknown name raises
    ``KeyError`` listing the registered options, and derived variants
    (``neo-s``, ``gscore-32c``, ...) apply their declarative overlays here.
    ``dram_policy="edge"`` systems take the given DRAM configuration; the
    GPU always runs at Orin's native bandwidth.
    """
    if dram is None:
        dram = DramConfig()
    spec = get_system(system)
    model = spec.build(dram=dram, cores=cores, **model_kwargs)
    return model, model.tile_size


def _simulate_system_uncached(
    system: str,
    scene: str,
    resolution: str,
    num_frames: int,
    speed: float,
    cores: int,
    bandwidth_gbps: float,
    **model_kwargs,
) -> SequenceReport:
    wm = get_workload_model(scene, num_frames=num_frames, speed=speed)
    dram = DramConfig(bandwidth_gbps=bandwidth_gbps)
    model, tile = build_system_model(system, dram=dram, cores=cores, **model_kwargs)
    workloads = wm.sequence_workloads(resolution, tile)
    return model.simulate(workloads, scene=scene)
