"""Tile-based alpha-blending rasterization (pipeline stage 4).

Per tile, Gaussians are blended front-to-back in depth order; a pixel stops
accumulating once its transmittance drops below the termination threshold.
The rasterizer also models the two hardware-relevant behaviours of Neo's
Rasterization Engine:

* **Subtile intersection testing** (ITU): each tile is subdivided into
  subtiles; a Gaussian is only blended into subtiles its bounding circle
  overlaps, and the per-tile OR of those bitmaps doubles as the *valid bit*
  that flags outgoing Gaussians for the next frame's deferred deletion.
* **Blend-op accounting**: the number of (Gaussian, subtile) and
  (Gaussian, pixel) operations feeds the hardware timing model.

**Chunked-vectorized core.**  Front-to-back compositing looks inherently
sequential (each Gaussian needs the transmittance its predecessors left
behind), but the recurrence is a running product: the transmittance a
Gaussian sees is ``T_in = T_0 * prod_{j<k} (1 - alpha_j)`` and its color
contribution ``T_in * alpha_k * c_k`` depends on no other contribution.
The blending loop therefore processes Gaussians in depth-ordered *chunks*:
one batched evaluation produces the whole chunk's alpha maps over the
tile's pixel grid, an exclusive cumulative product along the chunk axis
recovers every per-Gaussian incoming transmittance, and a cumulative sum
accumulates the color.  Both cumulations are seeded with the tile's
incoming state and evaluated with ``ufunc.accumulate`` (strictly
sequential, never pairwise), so every intermediate float is produced by
the same operations in the same order as the scalar loop — images,
``valid_bits``, and every :class:`RasterStats` counter are bit-identical
to the frozen scalar reference in :mod:`repro.pipeline.reference`.  Early
termination is detected at chunk granularity from the cumulative-product
stack; a chunk that would terminate mid-way is replayed through the
scalar path so the stop lands on exactly the same Gaussian.

**Bucketed whole-frame core.**  Chunking removes the per-Gaussian Python
overhead, but a frame still pays one Python loop iteration — and dozens of
small-array kernel launches — per tile.  :func:`rasterize` therefore
batches the blend recurrence *across* tiles as well: a frame's nonempty
dense tiles are grouped into occupancy buckets (power-of-two depth-count
classes, so padding to the bucket maximum costs < 2x), each bucket is
packed into dense ``(tiles, depth, tile_h, tile_w)`` arrays straight from
the ``TileStream`` offsets, and the alpha evaluation, exclusive
``(1 - alpha)`` transmittance product, and color accumulation run once per
bucket with a leading tile axis.  Padded slots carry ``alpha == 0`` and
composite as bitwise no-ops; early termination is *exact* without any
scalar replay, because the transmittance level stack materializes the very
values the scalar loop's pre-splat checks inspect — each tile's stopping
splat is read off the per-level maxima, its counters come from prefix
sums up to that stop, and later splats' color contributions are dropped.
Images, ``valid_bits``, and counters therefore stay bit-identical to the
scalar reference.  Sparse large tiles keep the flat-bbox-gather path; the
per-tile loop survives as :func:`rasterize_tiled` (dispatch baseline and
benchmark reference).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..backend import core_ops
from .framebuffer import Framebuffer
from .projection import ProjectedGaussians
from .sorting import SortedTiles
from .tiling import TileGrid

#: Ops the chunked/sparse blending cores dispatch through the pluggable
#: array backend.  The scalar replay path stays on plain numpy: it exists
#: to pin termination semantics, not to be fast.
_XP = core_ops(
    "rasterizer",
    "exp",
    "minimum",
    "where",
    "accumulate_multiply",
    "accumulate_add",
    "repeat",
    "cumsum",
    "frexp",
)

#: Contributions below 1/255 are invisible at 8-bit output and skipped,
#: matching the reference CUDA rasterizer.
MIN_ALPHA = 1.0 / 255.0

#: Alpha ceiling (reference implementation clips at 0.99).
MAX_ALPHA = 0.99

#: A pixel is finalized once its transmittance falls below this.
TERMINATION_THRESHOLD = 1e-4

#: Subtile edge used by the Neo accelerator (Table 1).
NEO_SUBTILE_SIZE = 8

#: Gaussians blended per batched chunk.  Large enough to amortize the
#: per-chunk dispatch overhead, small enough that a mid-chunk termination
#: (which falls back to the scalar path for that chunk) stays cheap and the
#: per-chunk ``(chunk, tile_h, tile_w)`` temporaries stay cache-friendly.
RASTER_CHUNK_SIZE = 64

#: Tiles up to this many pixels always take the chunked path: the whole-tile
#: batched evaluation costs microseconds per Gaussian, far below the scalar
#: loop's per-splat Python overhead, regardless of splat density.
CHUNKED_MAX_DENSE_AREA = 512

#: For larger tiles the chunked path evaluates every splat over the whole
#: tile, so it only wins when splat bboxes cover a reasonable fraction of
#: it.  Below this mean coverage the scalar loop's sparsity exploitation
#: beats the batched math (e.g. 64 px Neo tiles where bboxes cover ~8% of
#: the tile) and the tile is blended scalar.  Both paths are bit-identical;
#: the dispatch is purely a throughput choice.
CHUNKED_MIN_COVERAGE = 0.25

#: Element budget for one ``(depth + 1, tiles, tile_h, tile_w)`` level
#: stack of the bucketed whole-frame core.  Buckets whose stacks would
#: exceed it are processed in tile slabs (and, failing that, depth
#: segments), bounding peak memory while still amortizing kernel-launch
#: overhead over dozens of tiles per call.
_BUCKET_ELEMENT_BUDGET = 1 << 20

#: Reused backing stores for the bucketed core's large flat temporaries
#: (level stack, per-pixel operand/index arrays).  Freshly mmap'd pages
#: cost more to fault in than the math run over them, so each named role
#: keeps one buffer, grown on demand and recycled across slabs and frames.
_POOL: dict[str, np.ndarray] = {}


def _pool(name: str, n: int, dtype=np.float64) -> np.ndarray:
    """A pooled scratch array of ``n`` elements, reused across calls."""
    buf = _POOL.get(name)
    if buf is None or buf.size < n or buf.dtype != np.dtype(dtype):
        buf = np.empty(n, dtype=dtype)
        _POOL[name] = buf
    return buf[:n]


def _iota(n: int) -> np.ndarray:
    """The cached int32 sequence ``0..n-1`` (read-only by convention)."""
    buf = _POOL.get("iota")
    if buf is None or buf.size < n:
        buf = np.arange(max(n, 1 << 16), dtype=np.int32)
        _POOL["iota"] = buf
    return buf[:n]


@dataclass
class RasterStats:
    """Workload counters accumulated over a frame.

    Attributes
    ----------
    gaussians_processed:
        Tile-Gaussian pairs walked by the blending loop.
    blend_ops:
        (Gaussian, pixel) alpha evaluations actually performed.
    subtile_tests:
        (Gaussian, subtile) intersection tests performed by the ITU model.
    subtile_hits:
        Tests that found an overlap (work routed to an SCU).
    early_terminated_tiles:
        Tiles whose blending loop exited before exhausting their list.
    """

    gaussians_processed: int = 0
    blend_ops: int = 0
    subtile_tests: int = 0
    subtile_hits: int = 0
    early_terminated_tiles: int = 0

    def merge(self, other: "RasterStats") -> None:
        """Accumulate another tile's counters into this frame total."""
        self.gaussians_processed += other.gaussians_processed
        self.blend_ops += other.blend_ops
        self.subtile_tests += other.subtile_tests
        self.subtile_hits += other.subtile_hits
        self.early_terminated_tiles += other.early_terminated_tiles


@dataclass
class RasterResult:
    """Frame output: image, per-tile valid bits, and workload counters.

    ``valid_bits[t]`` aligns with the sorted row list of tile ``t`` and is
    ``True`` where the Gaussian intersected at least one subtile — the signal
    Neo's ITU feeds back to the Sorting Engine for lazy deletion.
    """

    image: np.ndarray
    valid_bits: dict[int, np.ndarray] = field(default_factory=dict)
    stats: RasterStats = field(default_factory=RasterStats)


def _subtile_bitmaps(
    means: np.ndarray,
    radii: np.ndarray,
    x0: int,
    y0: int,
    x1: int,
    y1: int,
    subtile: int,
) -> np.ndarray:
    """Conservative circle-vs-rectangle intersection bitmaps, batched.

    Returns a ``(n, subtiles_y, subtiles_x)`` boolean array for all ``n``
    Gaussians at once.  The per-element math matches the scalar formulation
    (clamp the center to each subtile rect; overlap iff the clamped point is
    within the radius), so the batched result is bitwise-identical to a
    per-Gaussian loop.
    """
    sxs = np.arange(x0, x1, subtile)
    sys_ = np.arange(y0, y1, subtile)
    cx = means[:, 0][:, None]
    cy = means[:, 1][:, None]
    qx = np.clip(cx, sxs[None, :], np.minimum(sxs + subtile, x1)[None, :])
    qy = np.clip(cy, sys_[None, :], np.minimum(sys_ + subtile, y1)[None, :])
    dx2 = (qx - cx) ** 2  # (n, subtiles_x)
    dy2 = (qy - cy) ** 2  # (n, subtiles_y)
    r2 = radii * radii
    return dx2[:, None, :] + dy2[:, :, None] <= r2[:, None, None]


def _scalar_blend_range(
    start: int,
    n: int,
    px: np.ndarray,
    py: np.ndarray,
    trans: np.ndarray,
    color: np.ndarray,
    means: np.ndarray,
    conics: np.ndarray,
    radii: np.ndarray,
    opacities: np.ndarray,
    colors: np.ndarray,
    valid: np.ndarray,
    termination: float,
    stats: RasterStats,
) -> None:
    """Blend Gaussians ``start..n-1`` one at a time (the pre-chunking loop).

    The chunked core replays a chunk through this path when the cumulative
    transmittance shows termination landing *inside* it, so the stop falls
    on exactly the Gaussian the scalar loop would have stopped at.
    """
    x0 = px[0] - 0.5
    y0 = py[0] - 0.5
    w = px.shape[0]
    h = py.shape[0]
    for i in range(start, n):
        if trans.max() < termination:
            stats.early_terminated_tiles += 1
            break
        if not valid[i]:
            continue
        stats.gaussians_processed += 1
        cx, cy = means[i]
        r = radii[i]
        # Restrict evaluation to the splat's pixel bbox within the tile.
        gx0 = max(int(np.floor(cx - r) - x0), 0)
        gx1 = min(int(np.ceil(cx + r) - x0) + 1, w)
        gy0 = max(int(np.floor(cy - r) - y0), 0)
        gy1 = min(int(np.ceil(cy + r) - y0) + 1, h)
        if gx0 >= gx1 or gy0 >= gy1:
            continue

        dx = px[gx0:gx1] - cx
        dy = py[gy0:gy1] - cy
        a, b, c = conics[i]
        power = -0.5 * (
            a * dx[None, :] ** 2 + c * dy[:, None] ** 2
        ) - b * dy[:, None] * dx[None, :]
        stats.blend_ops += power.size
        alpha = np.minimum(opacities[i] * np.exp(np.minimum(power, 0.0)), MAX_ALPHA)
        alpha[power > 0] = 0.0
        significant = alpha >= MIN_ALPHA
        if not significant.any():
            continue
        alpha = np.where(significant, alpha, 0.0)

        t_block = trans[gy0:gy1, gx0:gx1]
        weight = t_block * alpha
        color[gy0:gy1, gx0:gx1] += weight[..., None] * colors[i][None, None, :]
        trans[gy0:gy1, gx0:gx1] = t_block * (1.0 - alpha)


def _sparse_blend_range(
    px: np.ndarray,
    py: np.ndarray,
    trans: np.ndarray,
    color: np.ndarray,
    means: np.ndarray,
    conics: np.ndarray,
    radii: np.ndarray,
    opacities: np.ndarray,
    colors: np.ndarray,
    valid: np.ndarray,
    gx0: np.ndarray,
    gx1: np.ndarray,
    gy0: np.ndarray,
    gy1: np.ndarray,
    bbox_areas: np.ndarray,
    termination: float,
    stats: RasterStats,
    chunk_size: int,
) -> None:
    """Sparse-tile blending via a flat concatenated bbox gather.

    For sparse large tiles the whole-tile chunked path wastes most of its
    flops on empty pixels, but the scalar loop pays per-splat Python overhead
    for the alpha math.  This path batches the expensive part instead: for a
    chunk of splats it gathers every splat's pixel bbox into one flat array
    (exactly ``bbox_areas`` worth of pixels — no padding) and evaluates all
    alpha maps in one vectorized pass.  Compositing then only slices the
    precomputed map per significant splat and performs the three cheap blend
    ops.

    The gathered ``px[col] - cx`` / ``py[row] - cy`` operands are the same
    float values the scalar loop's bbox slices produce, and every subsequent
    arithmetic op is elementwise in the same order, so bbox pixels carry
    bit-identical alphas; insignificant pixels are forced to ``0.0`` exactly
    as the scalar ``np.where`` does.

    Termination mirrors the dense chunked path's argument: the scalar loop
    checks max transmittance before *every* Gaussian, and transmittance is
    non-increasing, so if the state before the chunk's last member still
    clears the threshold no earlier check fired either.  The chunk is blended
    without per-splat checks up to its last member; if the pre-last-member
    state then sits below the threshold, the chunk is rolled back to its
    entry snapshot and replayed through :func:`_scalar_blend_range`, landing
    the stop on the same Gaussian with the same counters as
    :func:`repro.pipeline.reference.rasterize_tile`.
    """
    n = means.shape[0]
    bw = gx1 - gx0
    xp = _XP()

    for s in range(0, n, chunk_size):
        # The pre-splat check for Gaussian ``s`` (and, transitively, every
        # earlier member of the chunk whose pre-state can only be >= this).
        if trans.max() < termination:
            stats.early_terminated_tiles += 1
            return
        e = min(s + chunk_size, n)

        # Splats the scalar loop evaluates alpha for: valid, non-empty bbox
        # (bbox_areas is already zero for the rest).
        idx = np.flatnonzero(bbox_areas[s:e] > 0) + s
        k = idx.shape[0]
        if k == 0:
            stats.gaussians_processed += int(np.count_nonzero(valid[s:e]))
            continue

        areas = bbox_areas[idx]
        starts = np.zeros(k + 1, dtype=np.int64)
        xp.cumsum(areas, out=starts[1:])
        total = int(starts[-1])
        local = np.arange(total, dtype=np.int64) - xp.repeat(starts[:-1], areas)
        bw_rep = xp.repeat(bw[idx], areas)
        rows_f = xp.repeat(gy0[idx], areas) + local // bw_rep
        cols_f = xp.repeat(gx0[idx], areas) + local % bw_rep

        dx = px[cols_f] - xp.repeat(means[idx, 0], areas)
        dy = py[rows_f] - xp.repeat(means[idx, 1], areas)
        a = xp.repeat(conics[idx, 0], areas)
        b = xp.repeat(conics[idx, 1], areas)
        c = xp.repeat(conics[idx, 2], areas)
        power = -0.5 * (a * dx**2 + c * dy**2) - b * dy * dx
        alpha = xp.minimum(
            xp.repeat(opacities[idx], areas) * xp.exp(xp.minimum(power, 0.0)),
            MAX_ALPHA,
        )
        ok = (power <= 0.0) & (alpha >= MIN_ALPHA)
        alpha = xp.where(ok, alpha, 0.0)
        sig = np.logical_or.reduceat(ok, starts[:-1])

        snap_trans = trans.copy()
        snap_color = color.copy()
        deferred = -1
        for j in np.flatnonzero(sig).tolist():
            i = int(idx[j])
            if i == e - 1:
                # Blended only after the chunk's final pre-splat check.
                deferred = j
                break
            st, en = starts[j], starts[j + 1]
            al = alpha[st:en].reshape(gy1[i] - gy0[i], gx1[i] - gx0[i])
            t_block = trans[gy0[i] : gy1[i], gx0[i] : gx1[i]]
            weight = t_block * al
            color[gy0[i] : gy1[i], gx0[i] : gx1[i]] += (
                weight[..., None] * colors[i][None, None, :]
            )
            trans[gy0[i] : gy1[i], gx0[i] : gx1[i]] = t_block * (1.0 - al)

        # State before the chunk's last member: below the threshold means a
        # pre-splat check fired somewhere inside this chunk — roll back and
        # replay scalar so the stop lands on the exact Gaussian.
        if e - s > 1 and trans.max() < termination:
            trans[:] = snap_trans
            color[:] = snap_color
            _scalar_blend_range(
                s, n, px, py, trans, color, means, conics, radii,
                opacities, colors, valid, termination, stats,
            )
            return

        if deferred >= 0:
            i = e - 1
            st, en = starts[deferred], starts[deferred + 1]
            al = alpha[st:en].reshape(gy1[i] - gy0[i], gx1[i] - gx0[i])
            t_block = trans[gy0[i] : gy1[i], gx0[i] : gx1[i]]
            weight = t_block * al
            color[gy0[i] : gy1[i], gx0[i] : gx1[i]] += (
                weight[..., None] * colors[i][None, None, :]
            )
            trans[gy0[i] : gy1[i], gx0[i] : gx1[i]] = t_block * (1.0 - al)

        stats.gaussians_processed += int(np.count_nonzero(valid[s:e]))
        stats.blend_ops += int(bbox_areas[s:e].sum())


def rasterize_tile(
    framebuffer: Framebuffer,
    projected: ProjectedGaussians,
    rows: np.ndarray,
    bounds: tuple[int, int, int, int],
    subtile_size: int | None = NEO_SUBTILE_SIZE,
    termination: float = TERMINATION_THRESHOLD,
    chunk_size: int = RASTER_CHUNK_SIZE,
) -> tuple[np.ndarray, RasterStats]:
    """Blend one tile's sorted Gaussians into the framebuffer.

    Parameters
    ----------
    rows:
        Row indices into ``projected``, already depth-sorted front-to-back.
    bounds:
        Tile pixel rectangle ``(x0, y0, x1, y1)``, exclusive upper.
    subtile_size:
        Edge of the ITU subtiles; ``None`` disables subtiling (pure per-pixel
        evaluation over the whole tile).
    chunk_size:
        Gaussians evaluated per batched blending step (see module docstring);
        results are bit-identical for every value ``>= 1``.

    Returns
    -------
    ``(valid_bits, stats)`` where ``valid_bits[i]`` is True if Gaussian
    ``rows[i]`` touched any subtile of this tile.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    x0, y0, x1, y1 = bounds
    stats = RasterStats()
    n = rows.shape[0]
    if n == 0 or x0 >= x1 or y0 >= y1:
        return np.zeros(n, dtype=bool), stats

    px = np.arange(x0, x1) + 0.5
    py = np.arange(y0, y1) + 0.5
    trans = framebuffer.transmittance[y0:y1, x0:x1]
    color = framebuffer.color[y0:y1, x0:x1]

    means = projected.means2d[rows]
    conics = projected.conic[rows]
    radii = projected.radii[rows]
    opacities = projected.opacities[rows]
    colors = projected.colors[rows]

    sub = subtile_size
    # Valid bits are *geometric*: the ITU runs intersection tests for the
    # whole list (it is pipelined ahead of the SCUs and cheap), regardless
    # of whether blending terminates early, so a Gaussian's membership in
    # the tile is judged independently of its visual contribution.
    if sub is not None:
        bitmaps = _subtile_bitmaps(means, radii, x0, y0, x1, y1, sub)
        stats.subtile_tests += bitmaps.size
        subtile_hits = np.count_nonzero(bitmaps, axis=(1, 2)).astype(np.int64)
        valid = subtile_hits > 0
        stats.subtile_hits += int(subtile_hits.sum())
    else:
        # No subtiling: test the splat's bounding circle against the tile.
        qx = np.clip(means[:, 0], x0, x1)
        qy = np.clip(means[:, 1], y0, y1)
        dist2 = (qx - means[:, 0]) ** 2 + (qy - means[:, 1]) ** 2
        valid = dist2 <= radii**2
        subtile_hits = valid.astype(np.int64)

    w = x1 - x0
    h = y1 - y0
    # Per-splat pixel bboxes, clipped to the tile — the same integers the
    # scalar loop derives one splat at a time.  Blending restricts each
    # splat's alpha map to its bbox, and blend_ops counts bbox pixels.
    gx0 = np.maximum(np.floor(means[:, 0] - radii).astype(np.int64) - x0, 0)
    gx1 = np.minimum(np.ceil(means[:, 0] + radii).astype(np.int64) - x0 + 1, w)
    gy0 = np.maximum(np.floor(means[:, 1] - radii).astype(np.int64) - y0, 0)
    gy1 = np.minimum(np.ceil(means[:, 1] + radii).astype(np.int64) - y0 + 1, h)
    bbox_areas = np.where(
        valid & (gx1 > gx0) & (gy1 > gy0), (gx1 - gx0) * (gy1 - gy0), 0
    )

    tile_area = h * w
    if tile_area > CHUNKED_MAX_DENSE_AREA and (
        int(bbox_areas.sum()) < CHUNKED_MIN_COVERAGE * n * tile_area
    ):
        # Sparse large tile: whole-tile batched evaluation would waste most
        # of its flops on empty pixels; the flat-gather path batches only
        # each splat's own pixels.
        _sparse_blend_range(
            px, py, trans, color, means, conics, radii, opacities, colors,
            valid, gx0, gx1, gy0, gy1, bbox_areas, termination, stats,
            chunk_size,
        )
        return valid, stats

    xs = np.arange(w)
    ys = np.arange(h)
    xp = _XP()

    for s in range(0, n, chunk_size):
        if trans.max() < termination:
            stats.early_terminated_tiles += 1
            break
        e = min(s + chunk_size, n)
        k = e - s

        # Batched alpha maps over the whole tile grid.  Every arithmetic op
        # is elementwise in the same order as the scalar loop, so values at
        # bbox pixels are bit-identical; pixels outside a splat's bbox (or
        # belonging to invalid splats) get alpha 0, which composites as a
        # bitwise no-op (multiply by 1.0, add of exact zero).
        dx = px[None, :] - means[s:e, 0][:, None]  # (k, w)
        dy = py[None, :] - means[s:e, 1][:, None]  # (k, h)
        a = conics[s:e, 0][:, None, None]
        b = conics[s:e, 1][:, None, None]
        c = conics[s:e, 2][:, None, None]
        power = -0.5 * (
            a * dx[:, None, :] ** 2 + c * dy[:, :, None] ** 2
        ) - b * dy[:, :, None] * dx[:, None, :]
        alpha = xp.minimum(
            opacities[s:e][:, None, None] * xp.exp(xp.minimum(power, 0.0)), MAX_ALPHA
        )
        in_x = (xs[None, :] >= gx0[s:e, None]) & (xs[None, :] < gx1[s:e, None])
        in_y = (ys[None, :] >= gy0[s:e, None]) & (ys[None, :] < gy1[s:e, None])
        if not valid[s:e].all():
            in_x &= valid[s:e, None]
        ok = (power <= 0.0) & (alpha >= MIN_ALPHA)
        ok &= in_y[:, :, None]
        ok &= in_x[:, None, :]
        alpha = xp.where(ok, alpha, 0.0)

        # Members whose alpha map is identically zero composite as bitwise
        # no-ops (multiply by 1.0, add of exact zero) — drop them from the
        # cumulative passes.  Counters still come from the full chunk.
        live = ok.any(axis=(1, 2))
        k_live = int(np.count_nonzero(live))
        if k_live:
            if k_live < k:
                alpha = alpha[live]
            chunk_colors = colors[s:e][live]

            # Exclusive cumulative product of (1 - alpha) seeded with the
            # tile's incoming transmittance: tstack[j] is the transmittance
            # each pixel presents to live member j.  ufunc.accumulate
            # multiplies strictly left-to-right, reproducing the scalar
            # recurrence bit-for-bit.
            tstack = np.empty((k_live + 1, h, w))
            tstack[0] = trans
            np.subtract(1.0, alpha, out=tstack[1:])
            # In-place accumulate is safe (each level is read before it is
            # overwritten) and halves the pass's temporaries.
            tstack = xp.accumulate_multiply(tstack, axis=0, out=tstack)

            # The scalar loop checks max transmittance before *every*
            # Gaussian.  Transmittance is non-increasing, so if the state
            # before the chunk's last member still clears the threshold no
            # earlier check fired either; otherwise replay the chunk scalar
            # so the stop lands on the same Gaussian with the same counters.
            # (Dropped members leave transmittance untouched, so that state
            # sits at cumulation level k_live - 1 when the last member is
            # live and k_live when it was dropped.)
            last_check = k_live - 1 if live[k - 1] else k_live
            if k > 1 and tstack[last_check].max() < termination:
                _scalar_blend_range(
                    s, n, px, py, trans, color, means, conics, radii,
                    opacities, colors, valid, termination, stats,
                )
                return valid, stats

            # color += T_in * alpha * c, accumulated in chunk order and
            # seeded with the incoming color so the additions associate
            # exactly as the scalar loop's.
            weights = tstack[:k_live] * alpha
            contribs = np.empty((k_live + 1, h, w, 3))
            contribs[0] = color
            np.multiply(
                weights[..., None], chunk_colors[:, None, None, :], out=contribs[1:]
            )
            contribs = xp.accumulate_add(contribs, axis=0, out=contribs)
            color[:] = contribs[k_live]
            trans[:] = tstack[k_live]

        stats.gaussians_processed += int(np.count_nonzero(valid[s:e]))
        stats.blend_ops += int(bbox_areas[s:e].sum())

    return valid, stats


def rasterize_tiled(
    sorted_tiles: SortedTiles,
    projected: ProjectedGaussians,
    grid: TileGrid,
    background: tuple[float, float, float] = (0.0, 0.0, 0.0),
    subtile_size: int | None = NEO_SUBTILE_SIZE,
    termination: float = TERMINATION_THRESHOLD,
    chunk_size: int = RASTER_CHUNK_SIZE,
) -> RasterResult:
    """Rasterize a frame one tile at a time (the pre-bucketing loop).

    Kept as the benchmark baseline for the bucketed whole-frame core and as
    a readable single-tile-at-a-time formulation of the same math; both
    produce bit-identical results.
    """
    framebuffer = Framebuffer(width=grid.width, height=grid.height, background=background)
    result = RasterResult(image=np.empty(0))
    for tile in range(grid.num_tiles):
        rows = sorted_tiles.rows_for(tile)
        if rows.shape[0] == 0:
            continue
        valid, stats = rasterize_tile(
            framebuffer,
            projected,
            rows,
            grid.tile_pixel_bounds(tile),
            subtile_size=subtile_size,
            termination=termination,
            chunk_size=chunk_size,
        )
        result.valid_bits[tile] = valid
        result.stats.merge(stats)
    result.image = framebuffer.finalize()
    return result


def _blend_bucket_dense(
    framebuffer: Framebuffer,
    x0_b: np.ndarray,
    y0_b: np.ndarray,
    h: int,
    w: int,
    counts: np.ndarray,
    means: np.ndarray,
    conics: np.ndarray,
    radii: np.ndarray,
    opacities: np.ndarray,
    colors: np.ndarray,
    valid: np.ndarray,
    gx0: np.ndarray,
    gx1: np.ndarray,
    gy0: np.ndarray,
    gy1: np.ndarray,
    bbox_areas: np.ndarray,
    termination: float,
    stats: RasterStats,
) -> None:
    """Blend one bucket slab of same-shape dense tiles with a tile axis.

    The slab's whole depth range is processed in one pass (split into depth
    segments only when the level stack would blow the element budget):
    every (tile, splat) bbox pixel is gathered into one flat array —
    exactly ``blend_ops`` worth of alpha evaluations, the same economy as
    the sparse path — and the significant ``(1 - alpha)`` values are
    scattered into a level-major ``(depth + 1, tiles, tile_h, tile_w)``
    stack whose strictly-sequential cumulative product recovers every
    per-splat incoming transmittance at once.  Color accumulates through
    ordered ``np.add.at`` scatter-adds: indices are laid out tile-major,
    splat-ascending, so colliding pixels accumulate in exactly the scalar
    loop's front-to-back order and association (``ufunc.at`` applies
    updates in index order).

    Early termination needs no replay: stack level ``m`` *is* the
    transmittance the scalar loop's pre-splat check inspects before splat
    ``m``, so the exact stopping splat of every tile is read straight off
    the per-level maxima — the first level below the threshold.  A
    terminated tile keeps level ``stop`` as its final transmittance, drops
    the color contributions of splats ``>= stop``, and takes its counters
    from prefix sums over ``valid`` / ``bbox_areas`` up to ``stop`` —
    landing on the same Gaussian with the same counters as the scalar
    loop, at any segment size.

    Pixels a splat does not touch multiply transmittance by ``1.0`` and add
    nothing — bitwise no-ops on the reachable state (transmittance is
    non-negative and accumulated color is never ``-0.0``), which is also
    why padded slots (``valid`` False, ``bbox_areas`` 0) are free.
    """
    num_tiles, depth = valid.shape
    xp = _XP()
    hw = h * w
    px = x0_b[:, None] + (np.arange(w) + 0.5)  # == arange(x0, x1) + 0.5, exactly
    py = y0_b[:, None] + (np.arange(h) + 0.5)
    trans = np.ones((num_tiles, h, w))
    color = np.zeros((num_tiles, h, w, 3))
    alive = np.ones(num_tiles, dtype=bool)
    n_max = int(counts.max())
    # Depth segment sized so the (segment + 1, tiles, h, w) stack stays
    # within the element budget; normally the caller's tile slabbing makes
    # this one segment covering the whole list.
    d_seg = max(1, _BUCKET_ELEMENT_BUDGET // (num_tiles * hw) - 1)

    for s in range(0, n_max, d_seg):
        # Tiles whose list is exhausted finished naturally: no further
        # termination checks, no counters — exactly the scalar loop ending.
        alive &= counts > s
        idx = np.flatnonzero(alive)
        if idx.size == 0:
            break
        e = min(s + d_seg, n_max)
        k = e - s
        ta = idx.size
        k_arr = np.minimum(counts[idx] - s, k)

        # Flat gather of the segment's bbox pixels, tile-major and
        # splat-ascending within each tile.
        areas = bbox_areas[idx, s:e].ravel()
        pos = np.flatnonzero(areas)
        if pos.size == 0:
            # No splat touches a pixel: transmittance is unchanged, so only
            # the segment-entry check (the scalar check before splat s) can
            # fire; counters advance for the rest.
            term = trans[idx].max(axis=(1, 2)) < termination
            if term.any():
                stats.early_terminated_tiles += int(np.count_nonzero(term))
                alive[idx[term]] = False
                idx = idx[~term]
            stats.gaussians_processed += int(np.count_nonzero(valid[idx, s:e]))
            continue

        t_loc = (pos // k).astype(np.int32)  # row within idx
        m_loc = (pos % k).astype(np.int32)  # splat within segment
        bw = (gx1[idx, s:e].ravel()[pos] - gx0[idx, s:e].ravel()[pos]).astype(np.int32)
        bh = (gy1[idx, s:e].ravel()[pos] - gy0[idx, s:e].ravel()[pos]).astype(np.int32)
        gx0p = gx0[idx, s:e].ravel()[pos].astype(np.int32)
        gy0p = gy0[idx, s:e].ravel()[pos].astype(np.int32)

        # The scalar loop evaluates its quadratic per member *axis*, not
        # per pixel: ``dx``/``a * dx**2`` over the bbox columns and
        # ``dy``/``c * dy**2``/``b * dy`` over the bbox rows, broadcast
        # together per pixel.  Reproduce exactly that factoring — the
        # per-axis tables below hold the same floats the scalar broadcast
        # produced, and the per-pixel combine performs the same three ops
        # in the same order — then gather per-pixel operands from the
        # tables.  (Σ bbox widths + heights is ~3x smaller than Σ areas,
        # so the expensive transcendental-free math runs on far fewer
        # elements than the per-pixel formulation.)
        mc = means[idx, s:e].reshape(ta * k, 2)
        cc = conics[idx, s:e].reshape(ta * k, 3)
        cexc = np.zeros(pos.size + 1, dtype=np.int64)
        xp.cumsum(bw, out=cexc[1:])
        rexc = np.zeros(pos.size + 1, dtype=np.int64)
        xp.cumsum(bh, out=rexc[1:])
        cexc32 = cexc[:-1].astype(np.int32)
        rexc32 = rexc[:-1].astype(np.int32)
        pxi = px[idx].ravel()
        pyi = py[idx].ravel()

        ccol = np.arange(int(cexc[-1]), dtype=np.int32)
        ccol -= cexc32[xp.repeat(np.arange(pos.size, dtype=np.int32), bw)]
        dxcat = pxi[xp.repeat(t_loc * np.int32(w) + gx0p, bw) + ccol]
        dxcat -= xp.repeat(mc[pos, 0], bw)  # px[col] - cx, per (member, col)
        ucat = np.square(dxcat)  # dx**2 (ndarray ** 2 lowers to square)
        ucat *= xp.repeat(cc[pos, 0], bw)  # a * dx**2

        rowmem = xp.repeat(np.arange(pos.size, dtype=np.int32), bh)
        rrow = np.arange(int(rexc[-1]), dtype=np.int32)
        rrow -= rexc32[rowmem]  # row ordinal within its member's bbox
        dycat = pyi[xp.repeat(t_loc * np.int32(h) + gy0p, bh) + rrow]
        dycat -= xp.repeat(mc[pos, 1], bh)  # py[row] - cy, per (member, row)
        vcat = np.square(dycat)
        vcat *= xp.repeat(cc[pos, 2], bh)  # c * dy**2
        w1cat = xp.repeat(cc[pos, 1], bh)
        w1cat *= dycat  # b * dy

        # Pixels are member-major, row-major: each (member, row) is one
        # contiguous run of bw pixels.  Everything per-pixel then derives
        # from the *global row ordinal* — recovered as an indicator cumsum
        # over the row runs — through per-row tables, which removes the
        # per-pixel integer divmod entirely.  Every full-length temporary
        # lives in a pooled buffer: at millions of elements, a fresh
        # allocation's page faults cost as much as the pass over it.
        linbase = m_loc + np.int32(1)
        linbase *= np.int32(ta)
        linbase += t_loc
        linbase *= np.int32(hw)
        linbase += gy0p * np.int32(w)
        linbase += gx0p  # the member's pixel base folds into its level base
        rowlin = xp.repeat(linbase, bh)
        rowlin += rrow * np.int32(w)  # stack-linear base of each bbox row
        rowbw = xp.repeat(bw, bh)  # pixels in each bbox row
        rowstarts = np.zeros(rowbw.size + 1, dtype=np.int64)
        xp.cumsum(rowbw, out=rowstarts[1:])
        total = int(rowstarts[-1])
        rowstarts32 = rowstarts[:-1].astype(np.int32)
        rowcexc = xp.repeat(cexc32, bh)  # column-table start of each row
        rowopac = xp.repeat(opacities[idx, s:e].reshape(ta * k)[pos], bh)

        ridx = _pool("ia", total, np.int32)
        ridx[:] = 0
        ridx[rowstarts[1:-1]] = 1
        xp.cumsum(ridx, out=ridx)  # global row ordinal per pixel
        cloc = _pool("ib", total, np.int32)
        np.take(rowstarts32, ridx, out=cloc, mode="clip")
        np.subtract(_iota(total), cloc, out=cloc)  # column within the bbox
        cidx = _pool("ic", total, np.int32)
        np.take(rowcexc, ridx, out=cidx, mode="clip")
        cidx += cloc  # flat pixel -> its member-column table entry
        power = _pool("fa", total)
        np.take(ucat, cidx, out=power, mode="clip")
        opnd = _pool("fb", total)
        np.take(vcat, ridx, out=opnd, mode="clip")
        power += opnd  # a*dx**2 + c*dy**2, per pixel
        power *= -0.5
        np.take(w1cat, ridx, out=opnd, mode="clip")
        opnd2 = _pool("fc", total)
        np.take(dxcat, cidx, out=opnd2, mode="clip")
        opnd *= opnd2  # (b * dy) * dx, per pixel
        power -= opnd
        ok = _pool("ba", total, bool)
        np.less_equal(power, 0.0, out=ok)
        xp.minimum(power, 0.0, out=power)
        xp.exp(power, out=power)
        np.take(rowopac, ridx, out=opnd, mode="clip")
        power *= opnd
        alpha = xp.minimum(power, MAX_ALPHA, out=power)
        sig = _pool("bb", total, bool)
        np.greater_equal(alpha, MIN_ALPHA, out=sig)
        ok &= sig

        # Level-major seeded stack: level 0 is each tile's incoming
        # transmittance, level m+1 holds (1 - alpha) of segment splat m
        # where significant and exactly 1.0 elsewhere.  The strictly-
        # sequential accumulate then makes level m the transmittance splat
        # m sees, and level k_t each tile's outgoing state (padded levels
        # multiply by 1.0).
        lin = cidx  # "ic": the table indices are consumed
        np.take(rowlin, ridx, out=lin, mode="clip")
        lin += cloc
        sel = np.flatnonzero(ok)
        lin_s = _pool("si", sel.size, np.int32)
        np.take(lin, sel, out=lin_s, mode="clip")
        a_s = _pool("sa", sel.size)
        np.take(alpha, sel, out=a_s, mode="clip")
        rset = _pool("sj", sel.size, np.int32)
        np.take(ridx, sel, out=rset, mode="clip")  # row run per significant pixel
        one_minus = _pool("sb", sel.size)
        np.subtract(1.0, a_s, out=one_minus)
        tstack = _pool("stack", (k + 1) * ta * hw).reshape(k + 1, ta, h, w)
        tstack[1:] = 1.0
        tstack[0] = trans[idx]
        tstack.reshape(-1)[lin_s] = one_minus
        st2 = xp.accumulate_multiply(
            tstack.reshape(k + 1, ta * hw), axis=0, out=tstack.reshape(k + 1, ta * hw)
        )
        tstack = st2.reshape(k + 1, ta, h, w)
        tflat = tstack.reshape(-1)

        # Exact per-tile stop: stack level m is the transmittance the
        # scalar loop checks before splat s + m, so the first level below
        # the threshold (within the tile's own list) is the stopping splat.
        # Transmittance is non-increasing level to level (every factor is
        # in [0, 1]), so only tiles whose *final* level dips below the
        # threshold can terminate at all — full stacks are scanned for
        # those few candidates only.
        tview = tstack.reshape(k + 1, ta, hw)
        last = tview[k_arr, np.arange(ta)]  # (ta, hw): each tile's outgoing state
        cand = last.max(axis=1) < termination
        term_t = cand
        stop = k_arr
        if cand.any():
            sub = np.flatnonzero(cand)
            lmax = tview[:, sub].max(axis=2)  # (k + 1, n_candidates)
            cond = lmax < termination
            cond &= np.arange(k + 1)[:, None] < k_arr[sub][None, :]
            term_sub = cond.any(axis=0)
            stop = k_arr.copy()
            stop[sub] = np.where(term_sub, np.argmax(cond, axis=0), k_arr[sub])
            term_t = np.zeros(ta, dtype=bool)
            term_t[sub] = term_sub
        if term_t.any():
            stats.early_terminated_tiles += int(np.count_nonzero(term_t))
            alive[idx[term_t]] = False
            # Drop color contributions of splats at/after each stop.
            rowm = xp.repeat(m_loc, bh)
            rowt = xp.repeat(t_loc, bh)
            keep = rowm[rset] < stop.astype(np.int32)[rowt[rset]]
            lin_s = lin_s[keep]
            a_s = a_s[keep]
            rset = rset[keep]

        # Counters over exactly the splats the scalar loop processed:
        # valid members (and their bbox pixels) with index < stop.
        nz = np.flatnonzero(stop > 0)
        vcum = np.cumsum(valid[idx, s:e], axis=1)
        bcum = np.cumsum(bbox_areas[idx, s:e], axis=1)
        stats.gaussians_processed += int(vcum[nz, stop[nz] - 1].sum())
        stats.blend_ops += int(bcum[nz, stop[nz] - 1].sum())

        # color += T_in * alpha * c for every significant flat pixel of a
        # splat before its tile's stop.  ufunc.at applies updates strictly
        # in index order, so pixels hit by several splats accumulate
        # front-to-back exactly like the scalar loop; channels are
        # independent bins.
        if lin_s.size:
            n_sig = lin_s.size
            lvl = _pool("sk", n_sig, np.int32)
            np.subtract(lin_s, np.int32(ta * hw), out=lvl)  # one level up: T_in
            wgt = _pool("sc", n_sig)
            np.take(tflat, lvl, out=wgt, mode="clip")
            wgt *= a_s
            # Bin = tile's frame slab + 3 * (pixel offset within tile); the
            # offset is recovered as lin_s mod hw, so the full-length pixel
            # index never needs to be carried this far.
            binbase = idx.astype(np.int32)[t_loc]
            binbase *= np.int32(hw * 3)
            bins = _pool("sm", n_sig, np.int32)
            np.take(xp.repeat(binbase, bh), rset, out=bins, mode="clip")
            np.remainder(lin_s, np.int32(hw), out=lvl)
            lvl *= np.int32(3)
            bins += lvl
            cmat = colors[idx, s:e].reshape(ta * k, 3)[pos]
            chan = _pool("sd", n_sig)
            vals = _pool("se", n_sig)
            cflat = color.reshape(-1)
            for ch in range(3):
                np.take(xp.repeat(cmat[:, ch], bh), rset, out=chan, mode="clip")
                np.multiply(wgt, chan, out=vals)
                np.add.at(cflat, bins, vals)
                if ch < 2:
                    bins += np.int32(1)

        # Level stop (== k_t when the list ran out) is each tile's state
        # when its loop ended — the carry into the next segment, and the
        # final transmittance for finished tiles.
        if cand.any():
            trans[idx] = tview[stop, np.arange(ta)].reshape(ta, h, w)
        else:
            trans[idx] = last.reshape(ta, h, w)

    for t in range(num_tiles):
        fx0, fy0 = int(x0_b[t]), int(y0_b[t])
        framebuffer.transmittance[fy0 : fy0 + h, fx0 : fx0 + w] = trans[t]
        framebuffer.color[fy0 : fy0 + h, fx0 : fx0 + w] = color[t]


def _rasterize_bucket(
    framebuffer: Framebuffer,
    projected: ProjectedGaussians,
    stream_values: np.ndarray,
    stream_offsets: np.ndarray,
    tiles_b: np.ndarray,
    counts_b: np.ndarray,
    x0_b: np.ndarray,
    y0_b: np.ndarray,
    x1_b: np.ndarray,
    y1_b: np.ndarray,
    subtile_size: int | None,
    termination: float,
    chunk_size: int,
    stats: RasterStats,
    valid_out: dict[int, np.ndarray],
) -> None:
    """Pack one occupancy bucket of same-shape tiles and blend it.

    Valid bits, subtile counters, and per-splat bboxes are computed once
    over the packed ``(tiles, slots)`` arrays; sparse large tiles then peel
    off to the flat-bbox-gather path and the dense rest goes through
    :func:`_blend_bucket_dense` in memory-bounded slabs.
    """
    h = int(y1_b[0] - y0_b[0])
    w = int(x1_b[0] - x0_b[0])
    n_max = int(counts_b.max())
    num_tiles = tiles_b.shape[0]

    # Pack: slot j of tile t is the tile's j-th sorted row; padded slots
    # repeat the last row and are masked invalid everywhere below.
    slot = np.arange(n_max)
    slot_valid = slot[None, :] < counts_b[:, None]
    src = stream_offsets[tiles_b][:, None] + np.minimum(
        slot[None, :], counts_b[:, None] - 1
    )
    rows_mat = stream_values[src]
    means = projected.means2d[rows_mat]
    conics = projected.conic[rows_mat]
    radii = projected.radii[rows_mat]
    opacities = projected.opacities[rows_mat]
    colors = projected.colors[rows_mat]
    cx = means[:, :, 0]
    cy = means[:, :, 1]

    sub = subtile_size
    if sub is not None:
        # Batched subtile intersection: same clamp-the-center math as
        # _subtile_bitmaps, with per-tile subtile origins broadcast in.
        sxs = x0_b[:, None] + np.arange(0, w, sub)[None, :]
        sys_ = y0_b[:, None] + np.arange(0, h, sub)[None, :]
        sx_hi = np.minimum(sxs + sub, x1_b[:, None])
        sy_hi = np.minimum(sys_ + sub, y1_b[:, None])
        qx = np.clip(cx[:, :, None], sxs[:, None, :], sx_hi[:, None, :])
        qy = np.clip(cy[:, :, None], sys_[:, None, :], sy_hi[:, None, :])
        dx2 = (qx - cx[:, :, None]) ** 2  # (T, n, Sx)
        dy2 = (qy - cy[:, :, None]) ** 2  # (T, n, Sy)
        r2 = radii * radii
        bitmaps = dx2[:, :, None, :] + dy2[:, :, :, None] <= r2[:, :, None, None]
        bitmaps &= slot_valid[:, :, None, None]
        stats.subtile_tests += int(counts_b.sum()) * sxs.shape[1] * sys_.shape[1]
        hits = np.count_nonzero(bitmaps, axis=(2, 3)).astype(np.int64)
        valid = hits > 0
        stats.subtile_hits += int(hits.sum())
    else:
        qx = np.clip(cx, x0_b[:, None], x1_b[:, None])
        qy = np.clip(cy, y0_b[:, None], y1_b[:, None])
        dist2 = (qx - cx) ** 2 + (qy - cy) ** 2
        valid = (dist2 <= radii**2) & slot_valid

    for t in range(num_tiles):
        valid_out[int(tiles_b[t])] = valid[t, : int(counts_b[t])]

    # Per-splat pixel bboxes, clipped per tile — the same integers
    # rasterize_tile derives, with a leading tile axis.
    gx0 = np.maximum(np.floor(cx - radii).astype(np.int64) - x0_b[:, None], 0)
    gx1 = np.minimum(np.ceil(cx + radii).astype(np.int64) - x0_b[:, None] + 1, w)
    gy0 = np.maximum(np.floor(cy - radii).astype(np.int64) - y0_b[:, None], 0)
    gy1 = np.minimum(np.ceil(cy + radii).astype(np.int64) - y0_b[:, None] + 1, h)
    bbox_areas = np.where(
        valid & (gx1 > gx0) & (gy1 > gy0), (gx1 - gx0) * (gy1 - gy0), 0
    )

    tile_area = h * w
    dense_loc = np.arange(num_tiles)
    if tile_area > CHUNKED_MAX_DENSE_AREA:
        dense = []
        for t in range(num_tiles):
            n_t = int(counts_b[t])
            if int(bbox_areas[t].sum()) < CHUNKED_MIN_COVERAGE * n_t * tile_area:
                # Sparse large tile: flat-bbox-gather fallback, fed the
                # packed per-tile slices (valid bits are already counted).
                fx0, fy0, fx1, fy1 = (
                    int(x0_b[t]), int(y0_b[t]), int(x1_b[t]), int(y1_b[t])
                )
                _sparse_blend_range(
                    np.arange(fx0, fx1) + 0.5,
                    np.arange(fy0, fy1) + 0.5,
                    framebuffer.transmittance[fy0:fy1, fx0:fx1],
                    framebuffer.color[fy0:fy1, fx0:fx1],
                    means[t, :n_t], conics[t, :n_t], radii[t, :n_t],
                    opacities[t, :n_t], colors[t, :n_t], valid[t, :n_t],
                    gx0[t, :n_t], gx1[t, :n_t], gy0[t, :n_t], gy1[t, :n_t],
                    bbox_areas[t, :n_t], termination, stats, chunk_size,
                )
            else:
                dense.append(t)
        dense_loc = np.array(dense, dtype=np.int64)

    if dense_loc.size == 0:
        return
    slab = max(1, _BUCKET_ELEMENT_BUDGET // ((n_max + 1) * tile_area))
    for start in range(0, dense_loc.size, slab):
        loc = dense_loc[start : start + slab]
        _blend_bucket_dense(
            framebuffer,
            x0_b[loc], y0_b[loc], h, w,
            counts_b[loc],
            means[loc], conics[loc], radii[loc], opacities[loc], colors[loc],
            valid[loc],
            gx0[loc], gx1[loc], gy0[loc], gy1[loc], bbox_areas[loc],
            termination, stats,
        )


def rasterize(
    sorted_tiles: SortedTiles,
    projected: ProjectedGaussians,
    grid: TileGrid,
    background: tuple[float, float, float] = (0.0, 0.0, 0.0),
    subtile_size: int | None = NEO_SUBTILE_SIZE,
    termination: float = TERMINATION_THRESHOLD,
    chunk_size: int = RASTER_CHUNK_SIZE,
) -> RasterResult:
    """Rasterize a full frame with occupancy-bucketed whole-frame blending.

    Nonempty tiles are grouped by (tile height, tile width, power-of-two
    depth-count class) and each bucket is blended with a leading tile axis
    (see the module docstring).  Output — image, ``valid_bits``, and every
    :class:`RasterStats` counter — is bit-identical to
    :func:`rasterize_tiled` and the frozen scalar reference.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    framebuffer = Framebuffer(width=grid.width, height=grid.height, background=background)
    result = RasterResult(image=np.empty(0))
    stream = sorted_tiles.stream
    tiles = stream.nonempty()
    if tiles.size == 0:
        result.image = framebuffer.finalize()
        return result

    offsets = stream.offsets
    counts = (offsets[tiles + 1] - offsets[tiles]).astype(np.int64)
    ts = grid.tile_size
    bx0 = (tiles % grid.tiles_x) * ts
    by0 = (tiles // grid.tiles_x) * ts
    bx1 = np.minimum(bx0 + ts, grid.width)
    by1 = np.minimum(by0 + ts, grid.height)

    # Occupancy class: counts in (2^(c-1), 2^c] share class c, so padding
    # each bucket to its maximum count costs < 2x slots.  Edge tiles get
    # their own buckets via the (h, w) part of the key.
    xp = _XP()
    mant, expo = xp.frexp(counts.astype(np.float64))
    cls = expo.astype(np.int64) - (mant == 0.5)

    buckets: dict[tuple[int, int, int], list[int]] = {}
    hs = by1 - by0
    ws = bx1 - bx0
    for j in range(tiles.shape[0]):
        buckets.setdefault((int(hs[j]), int(ws[j]), int(cls[j])), []).append(j)

    valid_bits: dict[int, np.ndarray] = {}
    for sel_list in buckets.values():
        sel = np.asarray(sel_list, dtype=np.int64)
        _rasterize_bucket(
            framebuffer,
            projected,
            stream.values,
            offsets,
            tiles[sel],
            counts[sel],
            bx0[sel], by0[sel], bx1[sel], by1[sel],
            subtile_size,
            termination,
            chunk_size,
            result.stats,
            valid_bits,
        )

    for t in sorted(valid_bits):
        result.valid_bits[t] = valid_bits[t]
    result.image = framebuffer.finalize()
    return result
