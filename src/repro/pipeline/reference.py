"""Frozen scalar reference for the functional pipeline's hot stages.

This module preserves, verbatim, the pre-vectorization scalar
implementations of the pipeline's inner loops — the per-Gaussian blending
loop that used to live in :func:`repro.pipeline.rasterizer.rasterize_tile`,
the per-tile sorting loop from :func:`repro.pipeline.sorting.sort_tiles`,
and the rank-dict form of
:func:`repro.pipeline.sorting.kendall_tau_distance` — before the
depth-chunked vectorized core landed.  It mirrors :mod:`repro.hw.reference`
and exists for two callers only:

* the **golden equivalence tests** (``tests/test_raster_reference.py``),
  which assert that the chunked rasterizer, the batched tile sort, and the
  vectorized rank metric are *bit-identical* to these scalar loops —
  images, ``valid_bits``, and every :class:`RasterStats` counter;
* the **benchmark subsystem** (``repro bench`` and the CI smoke job),
  which times these loops against the vectorized paths and records the
  speedup trajectory in ``BENCH_pipeline.json``.

Because this is a historical pin, it must only change when the pipeline's
physics deliberately changes — keep it in lockstep with the public
functions in :mod:`repro.pipeline.rasterizer` / :mod:`repro.pipeline.sorting`.
"""

from __future__ import annotations

import numpy as np

from .framebuffer import Framebuffer
from .projection import ProjectedGaussians
from .rasterizer import (
    MAX_ALPHA,
    MIN_ALPHA,
    NEO_SUBTILE_SIZE,
    TERMINATION_THRESHOLD,
    RasterResult,
    RasterStats,
    _subtile_bitmaps,
)
from .sorting import SortedTiles
from .tiling import TileAssignment, TileGrid


def rasterize_tile(
    framebuffer: Framebuffer,
    projected: ProjectedGaussians,
    rows: np.ndarray,
    bounds: tuple[int, int, int, int],
    subtile_size: int | None = NEO_SUBTILE_SIZE,
    termination: float = TERMINATION_THRESHOLD,
) -> tuple[np.ndarray, RasterStats]:
    """Scalar per-Gaussian blending loop (frozen pre-chunking reference)."""
    x0, y0, x1, y1 = bounds
    stats = RasterStats()
    n = rows.shape[0]
    if n == 0 or x0 >= x1 or y0 >= y1:
        return np.zeros(n, dtype=bool), stats

    px = np.arange(x0, x1) + 0.5
    py = np.arange(y0, y1) + 0.5
    trans = framebuffer.transmittance[y0:y1, x0:x1]
    color = framebuffer.color[y0:y1, x0:x1]

    means = projected.means2d[rows]
    conics = projected.conic[rows]
    radii = projected.radii[rows]
    opacities = projected.opacities[rows]
    colors = projected.colors[rows]

    sub = subtile_size
    if sub is not None:
        bitmaps = _subtile_bitmaps(means, radii, x0, y0, x1, y1, sub)
        stats.subtile_tests += bitmaps.size
        subtile_hits = np.count_nonzero(bitmaps, axis=(1, 2)).astype(np.int64)
        valid = subtile_hits > 0
        stats.subtile_hits += int(subtile_hits.sum())
    else:
        qx = np.clip(means[:, 0], x0, x1)
        qy = np.clip(means[:, 1], y0, y1)
        dist2 = (qx - means[:, 0]) ** 2 + (qy - means[:, 1]) ** 2
        valid = dist2 <= radii**2
        subtile_hits = valid.astype(np.int64)

    for i in range(n):
        if trans.max() < termination:
            stats.early_terminated_tiles += 1
            break
        if not valid[i]:
            continue
        stats.gaussians_processed += 1
        cx, cy = means[i]
        r = radii[i]
        gx0 = max(int(np.floor(cx - r)) - x0, 0)
        gx1 = min(int(np.ceil(cx + r)) - x0 + 1, x1 - x0)
        gy0 = max(int(np.floor(cy - r)) - y0, 0)
        gy1 = min(int(np.ceil(cy + r)) - y0 + 1, y1 - y0)
        if gx0 >= gx1 or gy0 >= gy1:
            continue

        dx = px[gx0:gx1] - cx
        dy = py[gy0:gy1] - cy
        a, b, c = conics[i]
        power = -0.5 * (
            a * dx[None, :] ** 2 + c * dy[:, None] ** 2
        ) - b * dy[:, None] * dx[None, :]
        stats.blend_ops += power.size
        alpha = np.minimum(opacities[i] * np.exp(np.minimum(power, 0.0)), MAX_ALPHA)
        alpha[power > 0] = 0.0
        significant = alpha >= MIN_ALPHA
        if not significant.any():
            continue
        alpha = np.where(significant, alpha, 0.0)

        t_block = trans[gy0:gy1, gx0:gx1]
        weight = t_block * alpha
        color[gy0:gy1, gx0:gx1] += weight[..., None] * colors[i][None, None, :]
        trans[gy0:gy1, gx0:gx1] = t_block * (1.0 - alpha)

    return valid, stats


def rasterize(
    sorted_tiles: SortedTiles,
    projected: ProjectedGaussians,
    grid: TileGrid,
    background: tuple[float, float, float] = (0.0, 0.0, 0.0),
    subtile_size: int | None = NEO_SUBTILE_SIZE,
    termination: float = TERMINATION_THRESHOLD,
) -> RasterResult:
    """Full-frame rasterization through the scalar per-Gaussian loop."""
    framebuffer = Framebuffer(width=grid.width, height=grid.height, background=background)
    result = RasterResult(image=np.empty(0))
    for tile in range(grid.num_tiles):
        rows = sorted_tiles.rows_for(tile)
        if rows.shape[0] == 0:
            continue
        valid, stats = rasterize_tile(
            framebuffer,
            projected,
            rows,
            grid.tile_pixel_bounds(tile),
            subtile_size=subtile_size,
            termination=termination,
        )
        result.valid_bits[tile] = valid
        result.stats.merge(stats)
    result.image = framebuffer.finalize()
    return result


def sort_tiles(assignment: TileAssignment) -> SortedTiles:
    """Per-tile lexsort loop (frozen pre-batching reference)."""
    tile_rows: list[np.ndarray] = []
    tile_ids: list[np.ndarray] = []
    tile_depths: list[np.ndarray] = []
    proj = assignment.projected
    for tile in range(assignment.num_tiles):
        rows = assignment.rows_for(tile)
        depths = proj.depths[rows]
        ids = proj.ids[rows]
        order = np.lexsort((ids, depths))
        tile_rows.append(rows[order])
        tile_ids.append(ids[order])
        tile_depths.append(depths[order])
    return SortedTiles.from_tile_lists(tile_rows, tile_ids, tile_depths)


def kendall_tau_distance(order_a: np.ndarray, order_b: np.ndarray) -> float:
    """Rank-dict Kendall-tau distance (frozen pre-vectorization reference)."""
    order_a = np.asarray(order_a)
    order_b = np.asarray(order_b)
    if order_a.shape != order_b.shape:
        raise ValueError("orderings must have equal length")
    n = order_a.shape[0]
    if n < 2:
        return 0.0
    if not np.array_equal(np.sort(order_a), np.sort(order_b)):
        raise ValueError("orderings must contain the same IDs")

    rank_in_b = {int(g): i for i, g in enumerate(order_b)}
    sequence = np.fromiter((rank_in_b[int(g)] for g in order_a), dtype=np.int64, count=n)
    inversions = _count_inversions(sequence)
    return inversions / (n * (n - 1) / 2)


def _count_inversions(seq: np.ndarray) -> int:
    """Count inversions with an iterative bottom-up merge sort."""
    seq = seq.copy()
    buffer = np.empty_like(seq)
    n = seq.shape[0]
    inversions = 0
    width = 1
    while width < n:
        for lo in range(0, n, 2 * width):
            mid = min(lo + width, n)
            hi = min(lo + 2 * width, n)
            i, j, k = lo, mid, lo
            while i < mid and j < hi:
                if seq[i] <= seq[j]:
                    buffer[k] = seq[i]
                    i += 1
                else:
                    buffer[k] = seq[j]
                    inversions += mid - i
                    j += 1
                k += 1
            buffer[k : k + mid - i] = seq[i:mid]
            k += mid - i
            buffer[k : k + hi - j] = seq[j:hi]
            seq[lo:hi] = buffer[lo:hi]
        width *= 2
    return inversions
