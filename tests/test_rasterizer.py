"""Unit tests for the tile-based alpha-blending rasterizer."""

import numpy as np
import pytest

from repro.pipeline.framebuffer import Framebuffer
from repro.pipeline.projection import ProjectedGaussians, project_gaussians
from repro.pipeline.rasterizer import rasterize, rasterize_tile
from repro.pipeline.sorting import sort_tiles
from repro.pipeline.tiling import TileGrid, assign_to_tiles


def _single_splat(x, y, radius=4.0, opacity=0.9, color=(1.0, 0.0, 0.0), depth=1.0, gid=0):
    sigma2 = (radius / 3.0) ** 2
    return ProjectedGaussians(
        ids=np.array([gid], dtype=np.int64),
        means2d=np.array([[x, y]], dtype=np.float64),
        cov2d=np.array([[[sigma2, 0.0], [0.0, sigma2]]]),
        conic=np.array([[1.0 / sigma2, 0.0, 1.0 / sigma2]]),
        depths=np.array([depth], dtype=np.float64),
        radii=np.array([radius], dtype=np.float64),
        colors=np.array([color], dtype=np.float64),
        opacities=np.array([opacity], dtype=np.float64),
    )


def _merge(*projs):
    return ProjectedGaussians(
        ids=np.concatenate([p.ids for p in projs]),
        means2d=np.concatenate([p.means2d for p in projs]),
        cov2d=np.concatenate([p.cov2d for p in projs]),
        conic=np.concatenate([p.conic for p in projs]),
        depths=np.concatenate([p.depths for p in projs]),
        radii=np.concatenate([p.radii for p in projs]),
        colors=np.concatenate([p.colors for p in projs]),
        opacities=np.concatenate([p.opacities for p in projs]),
    )


class TestFramebuffer:
    def test_initial_state(self):
        fb = Framebuffer(width=8, height=4)
        assert fb.color.shape == (4, 8, 3)
        assert np.all(fb.transmittance == 1.0)
        assert fb.num_pixels == 32

    def test_finalize_composites_background(self):
        fb = Framebuffer(width=2, height=2, background=(0.0, 1.0, 0.0))
        image = fb.finalize()
        assert np.allclose(image[..., 1], 1.0)
        assert np.allclose(image[..., 0], 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Framebuffer(width=0, height=2)


class TestRasterizeTile:
    def test_splat_renders_at_center(self):
        fb = Framebuffer(width=16, height=16)
        proj = _single_splat(8.0, 8.0)
        valid, stats = rasterize_tile(fb, proj, np.array([0]), (0, 0, 16, 16))
        assert valid[0]
        image = fb.finalize()
        assert image[8, 8, 0] > 0.5  # red splat visible
        assert stats.blend_ops > 0

    def test_front_splat_occludes_back(self):
        front = _single_splat(8.0, 8.0, opacity=0.95, color=(1, 0, 0), depth=1.0, gid=0)
        back = _single_splat(8.0, 8.0, opacity=0.95, color=(0, 0, 1), depth=2.0, gid=1)
        proj = _merge(front, back)
        fb = Framebuffer(width=16, height=16)
        rasterize_tile(fb, proj, np.array([0, 1]), (0, 0, 16, 16))
        image = fb.finalize()
        assert image[8, 8, 0] > image[8, 8, 2]

    def test_order_matters(self):
        a = _single_splat(8.0, 8.0, opacity=0.9, color=(1, 0, 0), depth=1.0, gid=0)
        b = _single_splat(8.0, 8.0, opacity=0.9, color=(0, 0, 1), depth=2.0, gid=1)
        proj = _merge(a, b)
        fb1 = Framebuffer(width=16, height=16)
        rasterize_tile(fb1, proj, np.array([0, 1]), (0, 0, 16, 16))
        fb2 = Framebuffer(width=16, height=16)
        rasterize_tile(fb2, proj, np.array([1, 0]), (0, 0, 16, 16))
        assert not np.allclose(fb1.finalize(), fb2.finalize())

    def test_early_termination(self):
        # Stack many opaque splats: the loop must stop early.
        splats = [
            _single_splat(8.0, 8.0, radius=30.0, opacity=0.99, depth=float(i + 1), gid=i)
            for i in range(50)
        ]
        proj = _merge(*splats)
        fb = Framebuffer(width=16, height=16)
        _, stats = rasterize_tile(fb, proj, np.arange(50), (0, 0, 16, 16))
        assert stats.early_terminated_tiles == 1
        assert stats.gaussians_processed < 50

    def test_valid_bits_geometric_even_after_termination(self):
        splats = [
            _single_splat(8.0, 8.0, radius=30.0, opacity=0.99, depth=float(i + 1), gid=i)
            for i in range(30)
        ]
        proj = _merge(*splats)
        fb = Framebuffer(width=16, height=16)
        valid, stats = rasterize_tile(fb, proj, np.arange(30), (0, 0, 16, 16))
        # Every splat geometrically intersects the tile: all valid bits set
        # even though blending terminated early.
        assert valid.all()

    def test_nonintersecting_splat_invalid(self):
        proj = _single_splat(100.0, 100.0, radius=3.0)
        fb = Framebuffer(width=16, height=16)
        valid, _ = rasterize_tile(fb, proj, np.array([0]), (0, 0, 16, 16))
        assert not valid[0]

    def test_empty_rows(self):
        fb = Framebuffer(width=16, height=16)
        valid, stats = rasterize_tile(
            fb, _single_splat(0, 0), np.empty(0, dtype=np.int64), (0, 0, 16, 16)
        )
        assert valid.shape == (0,)
        assert stats.blend_ops == 0

    def test_subtile_skips_work(self):
        # A tiny splat in one corner: with subtiles, blend ops stay small.
        proj = _single_splat(2.0, 2.0, radius=2.0)
        fb_sub = Framebuffer(width=64, height=64)
        _, stats_sub = rasterize_tile(fb_sub, proj, np.array([0]), (0, 0, 64, 64), subtile_size=8)
        assert stats_sub.subtile_tests == 64
        assert stats_sub.subtile_hits < 4


class TestRasterizeFrame:
    def test_full_frame(self, small_scene, camera):
        proj = project_gaussians(small_scene, camera)
        grid = TileGrid.for_camera(camera, 16)
        assignment = assign_to_tiles(proj, grid)
        result = rasterize(sort_tiles(assignment), proj, grid)
        assert result.image.shape == (camera.height, camera.width, 3)
        assert result.image.min() >= 0.0 and result.image.max() <= 1.0
        assert result.image.mean() > 0.01  # something rendered
        assert result.stats.gaussians_processed > 0

    def test_valid_bits_reported_per_nonempty_tile(self, small_scene, camera):
        proj = project_gaussians(small_scene, camera)
        grid = TileGrid.for_camera(camera, 16)
        assignment = assign_to_tiles(proj, grid)
        sorted_tiles = sort_tiles(assignment)
        result = rasterize(sorted_tiles, proj, grid)
        for t, valid in result.valid_bits.items():
            assert valid.shape[0] == sorted_tiles.rows_for(t).shape[0]

    def test_background(self, small_scene, camera):
        proj = project_gaussians(small_scene, camera)
        grid = TileGrid.for_camera(camera, 16)
        assignment = assign_to_tiles(proj, grid)
        result = rasterize(sort_tiles(assignment), proj, grid, background=(1.0, 1.0, 1.0))
        # Uncovered pixels take the background.
        assert result.image.max() == pytest.approx(1.0)
