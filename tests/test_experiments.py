"""Tests for the experiment drivers (fast configurations)."""

import pytest

from repro.experiments import ExperimentResult, list_experiments, run_experiment
from repro.experiments import (
    fig03,
    fig04,
    fig09,
    fig15,
    fig16,
    fig17,
    fig18,
    table3,
    table4,
)
from repro.experiments.runner import simulate_system

FAST_SCENES = ("family", "horse")
FAST_FRAMES = 4


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        names = list_experiments()
        for expected in (
            "fig03", "fig04", "fig05", "fig06", "fig07", "fig09", "fig10",
            "fig15", "fig16", "fig17", "fig18", "fig19",
            "table2", "table3", "table4",
        ):
            assert expected in names

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_run_experiment_dispatches(self):
        result = run_experiment("table3")
        assert isinstance(result, ExperimentResult)
        assert result.name == "table3"


class TestExperimentResult:
    def test_to_text_and_column(self):
        result = table4.run()
        text = result.to_text()
        assert "Merge Sort Unit+" in text
        assert len(result.column("component")) == len(result.rows)

    def test_filter(self):
        result = table3.run()
        assert result.filter(device="Neo")[0]["area_mm2"] < 0.5

    def test_empty_to_text(self):
        assert "(no rows)" in ExperimentResult("x", "y").to_text()


class TestSimulateSystem:
    def test_all_registered_systems(self):
        from repro.hw.system import registered_systems

        for system in registered_systems():
            report = simulate_system(system, "family", "hd", num_frames=3)
            assert report.fps > 0

    def test_unknown_system(self):
        with pytest.raises(KeyError):
            simulate_system("tpu", "family", "hd")


class TestFigureDrivers:
    def test_fig03_shape(self):
        result = fig03.run(scenes=FAST_SCENES, num_frames=FAST_FRAMES)
        assert len(result.rows) == len(FAST_SCENES) * 3
        hd = [r["fps"] for r in result.rows if r["resolution"] == "hd"]
        qhd = [r["fps"] for r in result.rows if r["resolution"] == "qhd"]
        assert min(hd) > max(qhd)  # FPS falls with resolution

    def test_fig04_scaling_claims(self):
        result = fig04.run(scenes=FAST_SCENES, num_frames=FAST_FRAMES)
        assert len(result.rows) == 9
        core_gain = fig04.core_scaling_at(result, 51.2)
        bw_gain = fig04.bandwidth_scaling_at(result, 16)
        assert core_gain < 1.5  # bandwidth-bound: cores barely help
        assert bw_gain > 2.0  # bandwidth helps a lot

    def test_fig09_interleaving_wins(self):
        # Perturbation bounded by the chunk size converges within a few
        # alternating-boundary iterations; fixed boundaries stay stuck.
        result = fig09.run(length=256, chunk_size=32, iterations=6, shuffle_distance=24)
        final = result.rows[-1]
        assert final["interleaved_max_disp"] == 0
        assert final["fixed_max_disp"] > 0
        assert final["interleaved_sortedness"] == 1.0

    def test_fig15_ordering(self):
        result = fig15.run(scenes=FAST_SCENES, num_frames=FAST_FRAMES)
        ratios = fig15.speedups(result)
        for res in ("hd", "fhd", "qhd"):
            assert ratios[res]["vs_orin"] > 1.0
            assert ratios[res]["vs_gscore"] > 1.0
        assert ratios["qhd"]["vs_gscore"] > ratios["hd"]["vs_gscore"]

    def test_fig16_reductions(self):
        result = fig16.run(scenes=FAST_SCENES, num_frames=FAST_FRAMES)
        cuts = fig16.reductions(result)
        assert cuts["vs_orin"] > 0.85
        assert cuts["vs_gscore"] > 0.6

    def test_fig17_panels(self):
        result = fig17.run_camera_speed(num_frames=FAST_FRAMES)
        assert all(row["fps"] > 60 for row in result.rows)

    def test_fig18_staircase(self):
        result = fig18.run(scenes=FAST_SCENES, num_frames=FAST_FRAMES)
        speedups = {r["variant"]: r["speedup_vs_gscore"] for r in result.rows}
        traffic = {r["variant"]: r["relative_traffic"] for r in result.rows}
        assert speedups["gscore"] == 1.0
        assert 1.0 < speedups["neo-s"] < speedups["neo"]
        assert traffic["neo"] < traffic["neo-s"] < 1.0

    def test_table4_added_hardware_share(self):
        share = table4.added_hardware_share()
        assert share["area_share"] == pytest.approx(0.09, abs=0.02)
        assert share["power_share"] == pytest.approx(0.089, abs=0.02)
