"""Unit tests for statistics helpers."""

import numpy as np
import pytest

from repro.metrics.stats import (
    empirical_cdf,
    geometric_mean,
    harmonic_mean,
    percentile_summary,
    relative_error,
)


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestHarmonicMean:
    def test_basic(self):
        assert harmonic_mean([2.0, 2.0]) == pytest.approx(2.0)
        assert harmonic_mean([1.0, 3.0]) == pytest.approx(1.5)

    def test_dominated_by_small_values(self):
        assert harmonic_mean([100.0, 1.0]) < 2.0

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            harmonic_mean([])
        with pytest.raises(ValueError):
            harmonic_mean([-1.0])


class TestPercentileSummary:
    def test_keys_and_order(self, rng):
        summary = percentile_summary(rng.random(1000))
        assert list(summary) == [50, 90, 95, 99]
        assert summary[50] <= summary[90] <= summary[99]

    def test_empty(self):
        assert percentile_summary([]) == {50: 0.0, 90: 0.0, 95: 0.0, 99: 0.0}


class TestEmpiricalCdf:
    def test_values(self):
        cdf = empirical_cdf([1.0, 2.0, 3.0, 4.0], [0.5, 2.0, 5.0])
        assert np.allclose(cdf, [0.0, 0.5, 1.0])

    def test_empty_sample(self):
        assert np.allclose(empirical_cdf([], [1.0, 2.0]), 0.0)


class TestRelativeError:
    def test_basic(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(1.0, 0.0) == float("inf")
