"""Shared per-frame report types for the hardware performance models.

Every system model (Orin GPU, GSCore, Neo) produces, per frame, a traffic
breakdown across the three memory-relevant pipeline stages (feature
extraction, sorting, rasterization) and a latency decomposition into memory
service time and compute time.  Sequence-level reports aggregate these into
the FPS / GB numbers the paper's figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .workload import FrameWorkload

#: Bytes read per Gaussian from the off-chip 3D feature table during feature
#: extraction (mean 12 + quat 16 + scale 12 + opacity 4 + degree-3 SH 192,
#: padded).
FEATURE_3D_BYTES = 240

#: Bytes per projected (2D) Gaussian record consumed by rasterization
#: (mean 8 + conic 12 + color 12 + opacity 4 + depth 4 + radius 4, padded).
FEATURE_2D_BYTES = 48

#: Bytes of the position/bound data culling touches for off-screen Gaussians.
CULL_PROBE_BYTES = 16

#: Output framebuffer bytes per pixel (RGBA8).
PIXEL_BYTES = 4


@dataclass
class StageTraffic:
    """Per-stage DRAM traffic in bytes for one frame."""

    feature_extraction: float = 0.0
    sorting: float = 0.0
    rasterization: float = 0.0

    @property
    def total(self) -> float:
        """All bytes moved this frame."""
        return self.feature_extraction + self.sorting + self.rasterization

    def fractions(self) -> dict[str, float]:
        """Per-stage share of the total (zeros if no traffic)."""
        total = self.total
        if total <= 0:
            return {"feature_extraction": 0.0, "sorting": 0.0, "rasterization": 0.0}
        return {
            "feature_extraction": self.feature_extraction / total,
            "sorting": self.sorting / total,
            "rasterization": self.rasterization / total,
        }

    def add(self, other: "StageTraffic") -> None:
        """Accumulate another frame's traffic."""
        self.feature_extraction += other.feature_extraction
        self.sorting += other.sorting
        self.rasterization += other.rasterization


@dataclass
class FrameReport:
    """One frame's performance on one system.

    Attributes
    ----------
    traffic:
        DRAM bytes per stage.
    memory_time_s:
        DRAM service time for the frame's traffic.
    compute_time_s:
        Compute-side time (post-overlap residual; the models treat frame
        latency as memory time plus the non-hidden compute component).
    """

    frame_index: int
    traffic: StageTraffic
    memory_time_s: float
    compute_time_s: float

    @property
    def latency_s(self) -> float:
        """Frame latency in seconds."""
        return self.memory_time_s + self.compute_time_s

    @property
    def latency_ms(self) -> float:
        """Frame latency in milliseconds."""
        return self.latency_s * 1e3

    @property
    def fps(self) -> float:
        """Instantaneous throughput implied by this frame's latency."""
        return 1.0 / self.latency_s if self.latency_s > 0 else float("inf")


@dataclass
class SequenceReport:
    """Aggregated performance over a rendered sequence."""

    system: str
    scene: str
    resolution: tuple[int, int]
    frames: list[FrameReport] = field(default_factory=list)

    @property
    def num_frames(self) -> int:
        """Frames simulated."""
        return len(self.frames)

    @property
    def mean_latency_s(self) -> float:
        """Average frame latency."""
        if not self.frames:
            return 0.0
        return float(np.mean([f.latency_s for f in self.frames]))

    @property
    def fps(self) -> float:
        """Throughput: frames per second at the mean latency."""
        lat = self.mean_latency_s
        return 1.0 / lat if lat > 0 else float("inf")

    @property
    def total_traffic(self) -> StageTraffic:
        """Summed traffic across the sequence."""
        total = StageTraffic()
        for f in self.frames:
            total.add(f.traffic)
        return total

    def total_traffic_gb(self) -> float:
        """Total DRAM traffic in gigabytes."""
        return self.total_traffic.total / 1e9

    def traffic_gb_for(self, num_frames: int) -> float:
        """Traffic extrapolated to ``num_frames`` (the paper reports 60)."""
        if not self.frames:
            return 0.0
        per_frame = self.total_traffic.total / self.num_frames
        return per_frame * num_frames / 1e9

    def latencies_ms(self) -> np.ndarray:
        """Per-frame latency series in milliseconds (Fig. 19a)."""
        return np.asarray([f.latency_ms for f in self.frames])


def effective_pairs(
    workload: FrameWorkload, termination_depth: float
) -> float:
    """Pairs actually blended before per-tile early termination.

    With thousands of Gaussians per tile, alpha blending saturates
    transmittance long before the list is exhausted.  We model the processed
    prefix per tile as ``min(occupancy, termination_depth)`` where
    ``termination_depth`` is the mean number of front-most Gaussians needed
    to opacify a tile (calibrated per tile size; opacity statistics are
    scene-preset properties).
    """
    if workload.nonempty_tiles == 0:
        return 0.0
    per_tile = min(workload.mean_occupancy, termination_depth)
    return per_tile * workload.nonempty_tiles
