"""Bench: Fig. 18 — ablation GSCore -> Neo-S -> Neo."""

from repro.experiments import fig18

from conftest import run_once


def test_fig18_ablation(benchmark, bench_frames):
    result = run_once(benchmark, fig18.run, num_frames=bench_frames)
    print("\n" + result.to_text())

    speedups = {r["variant"]: r["speedup_vs_gscore"] for r in result.rows}
    traffic = {r["variant"]: r["relative_traffic"] for r in result.rows}

    # Paper: the Sorting Engine alone (Neo-S) delivers ~3.3x and -71%
    # traffic; integrating the Rasterization Engine adds another ~1.7x and
    # -36%, for ~5.6x / -81% total.
    assert 2.0 < speedups["neo-s"] < 5.0
    assert speedups["neo"] / speedups["neo-s"] > 1.2
    assert 0.2 < traffic["neo-s"] < 0.5
    assert traffic["neo"] < 0.8 * traffic["neo-s"]
